//! Deterministic adversarial and non-stationary fleet models.
//!
//! Three orthogonal configs, all **stateless** like
//! [`crate::faults::FaultConfig`] — whether a `(round, client)` pair is
//! byzantine, offline, or departing is a pure hash of the run seed
//! under a fresh salt, so the adversarial landscape is deterministic,
//! checkpoint-free, parallel-safe, and identical before and after a
//! resume:
//!
//! * [`AttackConfig`] — marks clients byzantine and corrupts what they
//!   do: label flips in the shard they train on and sign-flipped /
//!   scaled / Gaussian-noise updates at the sink boundary;
//! * [`AvailabilityConfig`] — diurnal availability traces (a periodic
//!   per-round online probability) and mid-round departures, which
//!   churn the rendezvous path and the heartbeat reaper respectively;
//! * [`AdversityConfig`] — the bundle the coordinator installs (it also
//!   carries the [`ft_data::DriftConfig`] concept-drift schedule).
//!
//! The noise corruption is the only consumer of an RNG, and its stream
//! is seeded statelessly per `(seed, round, client)` — no shared RNG
//! state exists on any adversarial path.

use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use ft_tensor::Tensor;

use crate::faults::{mix, unit};
use crate::Result;

/// Salt decorrelating byzantine marking from the dropout/straggler
/// hashes (`0x5EED_D120`, `0x51AC_C42A`).
const BYZANTINE_SALT: u64 = 0xB12A_47E5_0B5E_55ED;
/// Salt for the Gaussian-noise corruption's per-client RNG seed.
const NOISE_SALT: u64 = 0x0153_CAFE_D00D_1E55;
/// Salt for the diurnal availability trace draw.
const AVAILABILITY_SALT: u64 = 0xD1A7_7A1C_E0FF_11E5;
/// Salt deciding whether an admitted client departs mid-round.
const DEPART_SALT: u64 = 0xDE9A_27E0_5EED_5A17;
/// Salt placing a departing client's exit within its round span.
const DEPART_AT_SALT: u64 = 0xDE9A_27A7_F2AC_7105;

/// How a byzantine client corrupts the update it uploads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Corruption {
    /// Upload the negated pseudo-gradient: `w' = g − δ` (equivalently
    /// `δ' = −δ`), the classic sign-flipping attack.
    #[default]
    SignFlip,
    /// Scale the pseudo-gradient by `factor` (model-boosting for
    /// `factor > 1`, a stealthier shrink for `factor < 1`).
    Scale {
        /// Multiplier applied to the client's delta.
        factor: f64,
    },
    /// Replace the pseudo-gradient with zero-mean Gaussian noise of
    /// the given standard deviation.
    Noise {
        /// Noise standard deviation.
        std: f64,
    },
}

/// Deterministic byzantine-client model. The default is inert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AttackConfig {
    /// Probability that a participant behaves byzantine in a round.
    pub byzantine_prob: f64,
    /// What a byzantine participant uploads.
    pub corruption: Corruption,
    /// Whether byzantine participants also flip the labels of the
    /// shard they train on (`y → C−1−y`), poisoning their local
    /// gradient direction itself.
    pub flip_labels: bool,
}

impl AttackConfig {
    /// Whether any attack is enabled.
    pub fn is_active(&self) -> bool {
        self.byzantine_prob > 0.0
    }

    /// Whether `client` behaves byzantine in `round` — a pure hash of
    /// the arguments, like [`crate::faults::FaultConfig::drops`].
    pub fn is_byzantine(&self, seed: u64, round: u32, client: usize) -> bool {
        self.byzantine_prob > 0.0
            && unit(seed, u64::from(round), client as u64, BYZANTINE_SALT) < self.byzantine_prob
    }

    /// Applies this attack's corruption to one update in place, at the
    /// sink boundary. `weights` are the client's uploaded local
    /// weights and `delta` its pseudo-gradient `w − g` (empty when the
    /// algorithm does not track deltas); both views are corrupted
    /// consistently, so `weights − delta` still reconstructs the same
    /// round-start global model.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape mismatches (impossible for updates
    /// produced by the trainer).
    pub fn corrupt(
        &self,
        seed: u64,
        round: u32,
        client: usize,
        weights: &mut [Tensor],
        delta: &mut [Tensor],
    ) -> Result<()> {
        match self.corruption {
            Corruption::SignFlip => scale_delta(weights, delta, -1.0)?,
            Corruption::Scale { factor } => scale_delta(weights, delta, factor as f32)?,
            Corruption::Noise { std } => {
                let h = mix(seed ^ mix(u64::from(round) ^ mix(client as u64 ^ NOISE_SALT)));
                let mut rng = rand::rngs::StdRng::seed_from_u64(h);
                // ft-lint: allow(P001) — std is validated finite and >= 0 by the scenario schema.
                let dist = Normal::new(0.0f64, std.max(0.0)).expect("finite std");
                if delta.is_empty() {
                    for w in weights.iter_mut() {
                        for v in w.data_mut() {
                            *v += dist.sample(&mut rng) as f32;
                        }
                    }
                } else {
                    // δ' = noise; w' = g + δ' = (w − δ) + noise.
                    for (w, d) in weights.iter_mut().zip(delta.iter_mut()) {
                        w.sub_assign(d).map_err(ft_model::ModelError::from)?;
                        for v in d.data_mut() {
                            *v = dist.sample(&mut rng) as f32;
                        }
                        w.add_assign(d).map_err(ft_model::ModelError::from)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Rescales the delta view by `factor`, keeping the weight view
/// consistent: `w' = g + factor·δ = w + (factor−1)·δ`. Without a delta
/// the weights themselves are scaled (the only gradient proxy there
/// is).
fn scale_delta(weights: &mut [Tensor], delta: &mut [Tensor], factor: f32) -> Result<()> {
    if delta.is_empty() {
        for w in weights.iter_mut() {
            w.scale_mut(factor);
        }
    } else {
        for (w, d) in weights.iter_mut().zip(delta.iter_mut()) {
            w.axpy(factor - 1.0, d)
                .map_err(ft_model::ModelError::from)?;
            d.scale_mut(factor);
        }
    }
    Ok(())
}

/// Diurnal availability and mid-round departure. The default (empty
/// trace, zero departure probability) is inert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AvailabilityConfig {
    /// Per-round online probability, cycled (`trace[round % len]`).
    /// Empty means every device is always reachable — the pre-existing
    /// behaviour.
    pub trace: Vec<f64>,
    /// Probability that an *admitted* client departs mid-round (its
    /// later messages are lost; the heartbeat deadline reaps it).
    pub departure_prob: f64,
}

impl AvailabilityConfig {
    /// Whether this config changes anything at all.
    pub fn is_active(&self) -> bool {
        !self.trace.is_empty() || self.departure_prob > 0.0
    }

    /// Whether `client` is reachable in `round` under the trace.
    pub fn online(&self, seed: u64, round: u32, client: usize) -> bool {
        if self.trace.is_empty() {
            return true;
        }
        let p = self.trace[round as usize % self.trace.len()];
        unit(seed, u64::from(round), client as u64, AVAILABILITY_SALT) < p
    }

    /// If `client` departs mid-round, the fraction of its round span
    /// (in `[0, 1)`) at which it goes dark.
    pub fn departure_frac(&self, seed: u64, round: u32, client: usize) -> Option<f64> {
        let r = u64::from(round);
        let c = client as u64;
        (self.departure_prob > 0.0 && unit(seed, r, c, DEPART_SALT) < self.departure_prob)
            .then(|| unit(seed, r, c, DEPART_AT_SALT))
    }
}

/// Everything adversarial or non-stationary a coordinator can be asked
/// to simulate, as one installable bundle. Every part defaults inert,
/// so scenarios written before this existed keep their exact behaviour
/// (and golden digests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AdversityConfig {
    /// Byzantine clients and their corruption.
    pub attack: AttackConfig,
    /// Diurnal availability and mid-round departures.
    pub availability: AvailabilityConfig,
    /// Temporal concept drift (label rotation).
    pub drift: ft_data::DriftConfig,
}

impl AdversityConfig {
    /// Whether any adversity is enabled.
    pub fn is_active(&self) -> bool {
        self.attack.is_active() || self.availability.is_active() || self.drift.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), &[vals.len()]).unwrap()
    }

    #[test]
    fn default_is_inert() {
        let adv = AdversityConfig::default();
        assert!(!adv.is_active());
        assert!(!adv.attack.is_byzantine(7, 3, 1));
        assert!(adv.availability.online(7, 3, 1));
        assert!(adv.availability.departure_frac(7, 3, 1).is_none());
    }

    #[test]
    fn byzantine_marking_is_deterministic_and_rate_respecting() {
        let a = AttackConfig {
            byzantine_prob: 0.3,
            ..Default::default()
        };
        let mut marked = 0usize;
        for round in 0..100u32 {
            for client in 0..100usize {
                let b = a.is_byzantine(42, round, client);
                assert_eq!(b, a.is_byzantine(42, round, client));
                marked += usize::from(b);
            }
        }
        let rate = marked as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "byzantine rate {rate}");
    }

    #[test]
    fn byzantine_hash_decorrelates_from_dropout_hash() {
        let a = AttackConfig {
            byzantine_prob: 0.5,
            ..Default::default()
        };
        let f = crate::faults::FaultConfig {
            dropout_prob: 0.5,
            ..Default::default()
        };
        let agree = (0..1000)
            .filter(|&c| a.is_byzantine(1, 0, c) == f.drops(1, 0, c))
            .count();
        assert!(
            (350..650).contains(&agree),
            "salts should decorrelate, agreement {agree}/1000"
        );
    }

    #[test]
    fn sign_flip_negates_the_delta_and_keeps_views_consistent() {
        let a = AttackConfig {
            byzantine_prob: 1.0,
            corruption: Corruption::SignFlip,
            ..Default::default()
        };
        // g = 1, δ = 2, w = 3.
        let mut w = vec![tensor(&[3.0])];
        let mut d = vec![tensor(&[2.0])];
        a.corrupt(1, 0, 0, &mut w, &mut d).unwrap();
        assert_eq!(d[0].data(), &[-2.0]);
        assert_eq!(w[0].data(), &[-1.0], "w' = g − δ = 1 − 2");
        // Consistency: w' − δ' reconstructs g.
        assert_eq!(w[0].data()[0] - d[0].data()[0], 1.0);
    }

    #[test]
    fn scale_boosts_the_delta() {
        let a = AttackConfig {
            byzantine_prob: 1.0,
            corruption: Corruption::Scale { factor: 10.0 },
            ..Default::default()
        };
        let mut w = vec![tensor(&[3.0])];
        let mut d = vec![tensor(&[2.0])];
        a.corrupt(1, 0, 0, &mut w, &mut d).unwrap();
        assert_eq!(d[0].data(), &[20.0]);
        assert_eq!(w[0].data(), &[21.0], "w' = g + 10δ = 1 + 20");
    }

    #[test]
    fn sign_flip_without_delta_negates_weights() {
        let a = AttackConfig {
            byzantine_prob: 1.0,
            corruption: Corruption::SignFlip,
            ..Default::default()
        };
        let mut w = vec![tensor(&[3.0, -1.5])];
        let mut d = Vec::new();
        a.corrupt(1, 0, 0, &mut w, &mut d).unwrap();
        assert_eq!(w[0].data(), &[-3.0, 1.5]);
    }

    #[test]
    fn noise_is_deterministic_per_tuple_and_replaces_the_delta() {
        let a = AttackConfig {
            byzantine_prob: 1.0,
            corruption: Corruption::Noise { std: 0.5 },
            ..Default::default()
        };
        let run = |round: u32, client: usize| {
            let mut w = vec![tensor(&[3.0, 3.0])];
            let mut d = vec![tensor(&[2.0, 2.0])];
            a.corrupt(9, round, client, &mut w, &mut d).unwrap();
            (w[0].data().to_vec(), d[0].data().to_vec())
        };
        let (w1, d1) = run(0, 0);
        let (w2, d2) = run(0, 0);
        assert_eq!(w1, w2);
        assert_eq!(d1, d2);
        let (_, d3) = run(0, 1);
        assert_ne!(d1, d3, "different clients draw different noise");
        // w' − δ' still reconstructs g = 1 for every coordinate.
        for (w, d) in w1.iter().zip(&d1) {
            assert!((w - d - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn availability_trace_cycles_and_respects_rates() {
        let av = AvailabilityConfig {
            trace: vec![1.0, 0.0],
            departure_prob: 0.0,
        };
        for client in 0..50 {
            assert!(av.online(3, 0, client), "p=1.0 round");
            assert!(!av.online(3, 1, client), "p=0.0 round");
            assert!(av.online(3, 2, client), "trace cycles");
        }
        let partial = AvailabilityConfig {
            trace: vec![0.4],
            departure_prob: 0.0,
        };
        let online = (0..10_000).filter(|&c| partial.online(3, 0, c)).count();
        let rate = online as f64 / 10_000.0;
        assert!((rate - 0.4).abs() < 0.02, "online rate {rate}");
    }

    #[test]
    fn departures_are_deterministic_with_in_range_fractions() {
        let av = AvailabilityConfig {
            trace: Vec::new(),
            departure_prob: 0.25,
        };
        let mut departing = 0usize;
        for client in 0..4000usize {
            let d = av.departure_frac(11, 2, client);
            assert_eq!(d, av.departure_frac(11, 2, client));
            if let Some(frac) = d {
                assert!((0.0..1.0).contains(&frac));
                departing += 1;
            }
        }
        let rate = departing as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "departure rate {rate}");
    }

    #[test]
    fn adversity_serde_round_trips() {
        let adv = AdversityConfig {
            attack: AttackConfig {
                byzantine_prob: 0.3,
                corruption: Corruption::Scale { factor: 5.0 },
                flip_labels: true,
            },
            availability: AvailabilityConfig {
                trace: vec![0.9, 0.5],
                departure_prob: 0.1,
            },
            drift: ft_data::DriftConfig {
                period: 2,
                rotation: 1,
            },
        };
        let json = serde_json::to_string(&adv).unwrap();
        let back: AdversityConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, adv);
    }
}
