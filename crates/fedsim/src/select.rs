//! Per-round participant selection.
//!
//! The paper's coordinator selects `N` clients uniformly at random each
//! round (`Select(C, N)` in Algorithm 1). A deterministic round-robin
//! selector is also provided for tests that need full coverage.

use std::collections::HashMap;

use rand::Rng;

/// Selects `n` distinct client indices uniformly at random from
/// `0..population`.
///
/// Implemented as a *partial* Fisher–Yates shuffle over a sparse
/// (hash-map) view of the identity permutation: only `n` RNG draws and
/// `O(n)` memory, instead of materializing and fully shuffling a
/// `0..population` vector every round just to keep its first `n`
/// entries. Each output position still receives a uniformly random
/// index from the not-yet-taken remainder, so the selection
/// distribution is exactly that of a full shuffle-and-truncate.
///
/// Returns fewer than `n` indices when the population is smaller.
pub fn uniform(rng: &mut impl Rng, population: usize, n: usize) -> Vec<usize> {
    let n = n.min(population);
    // `displaced[i]` is the value the virtual array holds at slot `i`
    // wherever that differs from the identity.
    let mut displaced: HashMap<usize, usize> = HashMap::with_capacity(2 * n);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let j = rng.gen_range(i..population);
        let taken = displaced.get(&j).copied().unwrap_or(j);
        let shifted = displaced.get(&i).copied().unwrap_or(i);
        displaced.insert(j, shifted);
        out.push(taken);
    }
    out
}

/// Deterministic round-robin selection: round `r` takes the next `n`
/// indices modulo the population, guaranteeing every client
/// participates regularly. Used by ablation tests.
pub fn round_robin(round: usize, population: usize, n: usize) -> Vec<usize> {
    if population == 0 {
        return Vec::new();
    }
    let n = n.min(population);
    (0..n).map(|i| (round * n + i) % population).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_selects_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let sel = uniform(&mut rng, 100, 10);
        assert_eq!(sel.len(), 10);
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn uniform_handles_small_population() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(uniform(&mut rng, 3, 10).len(), 3);
        assert!(uniform(&mut rng, 0, 10).is_empty());
    }

    #[test]
    fn round_robin_covers_everyone() {
        let mut seen = [false; 10];
        for round in 0..5 {
            for idx in round_robin(round, 10, 2) {
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_selection_frequencies_are_flat() {
        // Partial Fisher–Yates must keep the full-shuffle distribution:
        // every index equally likely. Binomial(6000, 0.3) has σ ≈ 35,
        // so a ±180 band is a 5σ guard against bias.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..6000 {
            for idx in uniform(&mut rng, 10, 3) {
                counts[idx] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f32 - 1800.0).abs() < 180.0,
                "index {i} selected {c} times, expected ~1800"
            );
        }
    }

    #[test]
    fn uniform_eventually_covers_population() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 20];
        for _ in 0..60 {
            for idx in uniform(&mut rng, 20, 5) {
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
