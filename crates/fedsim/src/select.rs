//! Per-round participant selection.
//!
//! The paper's coordinator selects `N` clients uniformly at random each
//! round (`Select(C, N)` in Algorithm 1). A deterministic round-robin
//! selector is also provided for tests that need full coverage.

use rand::seq::SliceRandom;
use rand::Rng;

/// Selects `n` distinct client indices uniformly at random from
/// `0..population`.
///
/// Returns fewer than `n` indices when the population is smaller.
pub fn uniform(rng: &mut impl Rng, population: usize, n: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..population).collect();
    all.shuffle(rng);
    all.truncate(n.min(population));
    all
}

/// Deterministic round-robin selection: round `r` takes the next `n`
/// indices modulo the population, guaranteeing every client
/// participates regularly. Used by ablation tests.
pub fn round_robin(round: usize, population: usize, n: usize) -> Vec<usize> {
    if population == 0 {
        return Vec::new();
    }
    let n = n.min(population);
    (0..n).map(|i| (round * n + i) % population).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_selects_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let sel = uniform(&mut rng, 100, 10);
        assert_eq!(sel.len(), 10);
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn uniform_handles_small_population() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(uniform(&mut rng, 3, 10).len(), 3);
        assert!(uniform(&mut rng, 0, 10).is_empty());
    }

    #[test]
    fn round_robin_covers_everyone() {
        let mut seen = [false; 10];
        for round in 0..5 {
            for idx in round_robin(round, 10, 2) {
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_eventually_covers_population() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 20];
        for _ in 0..60 {
            for idx in uniform(&mut rng, 20, 5) {
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
