//! Per-client accuracy statistics.
//!
//! The paper reports the mean accuracy over all clients, the
//! inter-quartile range (IQR) of per-client accuracies (Table 2), and
//! full per-client distributions as box plots (Fig. 6).

use serde::{Deserialize, Serialize};

/// Five-number summary of a per-client accuracy distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum value.
    pub min: f32,
    /// 25th percentile.
    pub q1: f32,
    /// Median.
    pub median: f32,
    /// 75th percentile.
    pub q3: f32,
    /// Maximum value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f32,
}

impl BoxStats {
    /// Inter-quartile range `q3 - q1`, Table 2's IQR column.
    pub fn iqr(&self) -> f32 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation percentile of a sorted slice.
fn percentile_sorted(sorted: &[f32], p: f32) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes the five-number summary of `values`.
///
/// Returns all-zero stats for an empty input.
pub fn box_stats(values: &[f32]) -> BoxStats {
    if values.is_empty() {
        return BoxStats {
            min: 0.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            max: 0.0,
            mean: 0.0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    BoxStats {
        min: sorted[0],
        q1: percentile_sorted(&sorted, 0.25),
        median: percentile_sorted(&sorted, 0.5),
        q3: percentile_sorted(&sorted, 0.75),
        max: sorted[sorted.len() - 1],
        mean: values.iter().sum::<f32>() / values.len() as f32,
    }
}

/// Mean of a slice; zero when empty.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Sample standard deviation; zero for fewer than two values.
pub fn std_dev(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f32>() / (values.len() - 1) as f32;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_values() {
        let s = box_stats(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.q1, 0.25);
        assert_eq!(s.q3, 0.75);
        assert!((s.iqr() - 0.5).abs() < 1e-6);
        assert!((s.mean - 0.5).abs() < 1e-6);
    }

    #[test]
    fn box_stats_handle_singleton_and_empty() {
        let s = box_stats(&[0.7]);
        assert_eq!(s.min, 0.7);
        assert_eq!(s.max, 0.7);
        assert_eq!(s.iqr(), 0.0);
        let e = box_stats(&[]);
        assert_eq!(e.mean, 0.0);
    }

    #[test]
    fn std_dev_matches_manual() {
        let v = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Sample std of this classic example is ~2.138.
        assert!((std_dev(&v) - 2.138).abs() < 0.01);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = box_stats(&[0.0, 1.0]);
        assert!((s.median - 0.5).abs() < 1e-6);
        assert!((s.q1 - 0.25).abs() < 1e-6);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn box_stats_with_identical_values() {
        let s = box_stats(&[0.4; 10]);
        assert_eq!(s.min, 0.4);
        assert_eq!(s.max, 0.4);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn box_stats_are_order_invariant() {
        let a = box_stats(&[0.1, 0.9, 0.5, 0.3, 0.7]);
        let b = box_stats(&[0.9, 0.1, 0.7, 0.5, 0.3]);
        assert_eq!(a, b);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
