//! Federated-learning simulator: device traces, local training, client
//! selection, cost accounting, and evaluation metrics.
//!
//! This crate is the substrate both FedTrans and every baseline run on.
//! It replaces the paper's FedScale deployment with a deterministic
//! simulation:
//!
//! * [`device`] — synthetic client capability traces with the ≥29×
//!   compute disparity FedScale's 500k-device trace exhibits, plus the
//!   latency model behind Fig. 1a and Table 6;
//! * [`trainer`] — the local SGD executor (with optional FedProx
//!   proximal term) run by each participant, including parallel
//!   fan-out over participants;
//! * [`exec`] — the deterministic parallel client execution engine:
//!   budgeted fan-out of per-client work over the shared tensor worker
//!   pool, gated by `FT_CLIENT_THREADS`, with byte-identical results
//!   at any thread count;
//! * [`select`] — per-round participant selection;
//! * [`eval`] — parallel per-client evaluation fan-out over the shared
//!   tensor worker pool;
//! * [`costs`] — MAC / network / storage accounting (the paper's cost
//!   metrics in Table 2 and Figs. 2 and 7);
//! * [`metrics`] — per-client accuracy statistics (mean, IQR, boxplot
//!   quartiles for Fig. 6);
//! * [`roundtime`] — round-completion-time model for the straggler
//!   analysis (Table 6);
//! * [`faults`] — the deterministic client fault model (stateless
//!   dropout / straggler hashes) the coordinator's cohort emerges
//!   faults from;
//! * [`attack`] — the deterministic adversarial fleet model: byzantine
//!   clients (label flips, corrupted updates), diurnal availability
//!   traces, mid-round departures, and the concept-drift schedule —
//!   all stateless hashes like the fault model;
//! * [`coordinator`] — the message-driven coordinator runtime: the
//!   round state machine, the typed message protocol, the pluggable
//!   [`coordinator::Transport`], and the generic [`coordinator::drive`]
//!   round loop;
//! * [`driver`] — the [`driver::Algorithm`] trait the scenario harness
//!   drives every method (FedTrans and all baselines) through,
//!   including checkpoint/resume.
//!
//! # Example
//!
//! ```
//! use ft_fedsim::device::DeviceTraceConfig;
//!
//! let trace = DeviceTraceConfig::default().with_num_devices(50).generate();
//! assert_eq!(trace.len(), 50);
//! let disparity = trace.capacity_disparity();
//! assert!(disparity >= 20.0);
//! ```

// Enforced in depth by ft-lint (S001); the compiler backstops it here.
#![forbid(unsafe_code)]

pub mod attack;
pub mod coordinator;
pub mod costs;
pub mod device;
pub mod driver;
pub mod eval;
pub mod exec;
pub mod faults;
pub mod metrics;
pub mod report;
pub mod roundtime;
pub mod select;
pub mod sink;
pub mod trainer;

mod error;

pub use attack::{AdversityConfig, AttackConfig, AvailabilityConfig, Corruption};
pub use coordinator::{drive, Coordinator, RoundOptions};
pub use driver::Algorithm;
pub use error::SimError;
pub use faults::FaultConfig;
pub use sink::{
    ClientUpdate, CoordinateMedianSink, FedAvgSink, NormClipSink, RobustAggregation, RobustSink,
    RoundManifest, TaskSpec, TrimmedMeanSink, UpdateSink,
};

/// Convenience alias for results produced by the simulator.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod smoke {
    use super::device::DeviceTraceConfig;

    #[test]
    fn core_type_constructs_and_round_trips() {
        let trace = DeviceTraceConfig::default().with_num_devices(12).generate();
        assert_eq!(trace.len(), 12);
        assert!(trace.capacity_disparity() >= 1.0);
    }
}
