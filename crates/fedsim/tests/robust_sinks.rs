//! Property battery: robust aggregation sinks are completion-order
//! invariant to the bit.
//!
//! The coordinator absorbs uploads in ascending task order behind a
//! reorder buffer, no matter when each upload physically completes.
//! These tests replay that dispatch discipline against every
//! [`RobustSink`] variant and pin the determinism contract from the
//! module docs: for any cohort, any completion-order permutation, and
//! any `max_in_flight` window, the aggregate is 0-ULP identical to a
//! straight task-order fold — and `TrimmedMean { trim: 0 }` replays
//! the plain [`FedAvgSink`] exactly, bit for bit.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ft_fedsim::sink::{
    ClientUpdate, FedAvgSink, RobustAggregation, RobustSink, RoundManifest, TaskSpec, UpdateSink,
};
use ft_tensor::Tensor;

/// Per-task weights + sample counts.
type Cohort = Vec<(Vec<Tensor>, u64)>;

fn manifest_specs(updates: &Cohort) -> Vec<TaskSpec> {
    updates
        .iter()
        .enumerate()
        .map(|(i, (_, n))| TaskSpec {
            task: i,
            client: i,
            samples: *n,
        })
        .collect()
}

/// Streams a cohort through `sink`, replaying the engine's dispatch
/// discipline: tasks run in windows of `max_in_flight`; within a
/// window, uploads *complete* in the given permutation order and sit
/// in a reorder buffer until the contiguous task-order prefix can be
/// absorbed (every sink rejects anything else).
fn stream_through(
    sink: &mut RobustSink,
    updates: &Cohort,
    completion: &[usize],
    max_in_flight: usize,
) -> Option<Vec<Tensor>> {
    let specs = manifest_specs(updates);
    sink.begin_round(&RoundManifest {
        round: 0,
        tasks: &specs,
    })
    .unwrap();

    let mut buffered: BTreeMap<usize, ClientUpdate> = BTreeMap::new();
    let mut cursor = 0usize;
    let window_of = |task: usize| task / max_in_flight;
    for wnd in 0..updates.len().div_ceil(max_in_flight) {
        for &task in completion.iter().filter(|&&t| window_of(t) == wnd) {
            buffered.insert(
                task,
                ClientUpdate {
                    task,
                    client: task,
                    samples: updates[task].1,
                    weights: updates[task].0.clone(),
                    delta: Vec::new(),
                },
            );
            while let Some(u) = buffered.remove(&cursor) {
                sink.absorb(u).unwrap();
                cursor += 1;
            }
        }
    }
    assert!(buffered.is_empty(), "every upload must have been absorbed");
    sink.finish().unwrap();
    sink.take_average()
}

/// The reference fold: the same sink family, absorbed in plain task
/// order with an unbounded window.
fn task_order_fold(spec: RobustAggregation, updates: &Cohort) -> Option<Vec<Tensor>> {
    let identity: Vec<usize> = (0..updates.len()).collect();
    let mut sink = RobustSink::new(spec);
    stream_through(&mut sink, updates, &identity, updates.len().max(1))
}

fn bits(tensors: &[Tensor]) -> Vec<u32> {
    tensors
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

/// A cohort, a completion-order permutation of it, and an in-flight
/// cap — same generator shape as `streaming_fold.rs`.
fn cohort() -> impl Strategy<Value = (Cohort, Vec<usize>, usize)> {
    (1usize..=10).prop_flat_map(|n| {
        let one_update = (proptest::collection::vec(-1000i32..1000, 3 + 4), 0u64..500).prop_map(
            |(vals, samples)| {
                // Eighth-steps keep values exact in f32 while still
                // exercising non-trivial rounding in the fold itself.
                let f: Vec<f32> = vals.iter().map(|&v| v as f32 * 0.125).collect();
                let t1 = Tensor::from_vec(f[..3].to_vec(), &[3]).unwrap();
                let t2 = Tensor::from_vec(f[3..].to_vec(), &[4]).unwrap();
                (vec![t1, t2], samples)
            },
        );
        (
            proptest::collection::vec(one_update, n),
            proptest::collection::vec(0u64..u64::MAX, n),
            1usize..=n + 2,
        )
            .prop_map(|(updates, keys, max_in_flight)| {
                // Argsort of random keys: a uniform completion-order
                // permutation (the vendored proptest has no shuffle).
                let mut perm: Vec<usize> = (0..keys.len()).collect();
                perm.sort_by_key(|&i| (keys[i], i));
                (updates, perm, max_in_flight)
            })
    })
}

/// Every sink family plus a swept parameter: 0 = FedAvg, 1 = NormClip
/// (tau in quarter-steps), 2 = TrimmedMean (trim in hundredths,
/// including the 0 degenerate case), 3 = CoordinateMedian. The vendored
/// proptest has no `prop_oneof`, so the variant is an index.
fn spec() -> impl Strategy<Value = RobustAggregation> {
    (0usize..4, 1u32..=64, 0u32..50).prop_map(|(variant, tau_q, trim_pct)| match variant {
        0 => RobustAggregation::FedAvg,
        1 => RobustAggregation::NormClip {
            tau: f64::from(tau_q) * 0.25,
        },
        2 => RobustAggregation::TrimmedMean {
            trim: f64::from(trim_pct) / 100.0,
        },
        _ => RobustAggregation::CoordinateMedian,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline invariant: for every sink family and parameter,
    /// the aggregate is independent of upload completion order and of
    /// the in-flight window size — 0 ULP, same NaN/zero signs.
    #[test]
    fn robust_sinks_are_completion_order_invariant(
        (updates, completion, max_in_flight) in cohort(),
        spec in spec(),
    ) {
        let reference = task_order_fold(spec, &updates);
        let mut sink = RobustSink::new(spec);
        let streamed = stream_through(&mut sink, &updates, &completion, max_in_flight);
        match (reference, streamed) {
            (None, None) => {}
            (Some(r), Some(s)) => prop_assert_eq!(bits(&r), bits(&s)),
            (r, s) => prop_assert!(
                false,
                "presence mismatch under {:?}: task-order {:?} vs streamed {:?}",
                spec,
                r.is_some(),
                s.is_some()
            ),
        }
    }

    /// `TrimmedMean { trim: 0 }` is not merely close to FedAvg — it
    /// replays the exact `axpy(samples/total)` sequence, so the result
    /// is bitwise identical to [`FedAvgSink`] under any completion
    /// order.
    #[test]
    fn trim_zero_replays_fedavg_exactly(
        (updates, completion, max_in_flight) in cohort(),
    ) {
        let specs = manifest_specs(&updates);
        let mut plain = FedAvgSink::single();
        plain
            .begin_round(&RoundManifest { round: 0, tasks: &specs })
            .unwrap();
        for (task, (weights, samples)) in updates.iter().enumerate() {
            plain
                .absorb(ClientUpdate {
                    task,
                    client: task,
                    samples: *samples,
                    weights: weights.clone(),
                    delta: Vec::new(),
                })
                .unwrap();
        }
        plain.finish().unwrap();
        let reference = plain.take_average();

        let mut trimmed = RobustSink::new(RobustAggregation::TrimmedMean { trim: 0.0 });
        let streamed = stream_through(&mut trimmed, &updates, &completion, max_in_flight);
        match (reference, streamed) {
            (None, None) => {}
            (Some(r), Some(s)) => prop_assert_eq!(bits(&r), bits(&s)),
            (r, s) => prop_assert!(
                false,
                "presence mismatch: fedavg {:?} vs trim-0 {:?}",
                r.is_some(),
                s.is_some()
            ),
        }
    }
}

/// All four sink families, with representative parameters, for the
/// edge-case sweeps below.
fn all_specs() -> Vec<RobustAggregation> {
    vec![
        RobustAggregation::FedAvg,
        RobustAggregation::NormClip { tau: 2.0 },
        RobustAggregation::TrimmedMean { trim: 0.25 },
        RobustAggregation::CoordinateMedian,
    ]
}

#[test]
fn empty_round_yields_no_aggregate_for_every_sink() {
    for spec in all_specs() {
        let mut sink = RobustSink::new(spec);
        let out = stream_through(&mut sink, &Vec::new(), &[], 1);
        assert!(out.is_none(), "{spec:?} must yield None on an empty round");
    }
}

#[test]
fn single_client_round_passes_the_lone_update_through() {
    let w = vec![Tensor::from_vec(vec![0.5, -1.25, 3.0], &[3]).unwrap()];
    let updates: Cohort = vec![(w.clone(), 10)];
    // NormClip with a generous tau, trimmed mean (k=1 forces g=0), and
    // the median of one value all degenerate to that single update.
    for spec in [
        RobustAggregation::FedAvg,
        RobustAggregation::NormClip { tau: 1e9 },
        RobustAggregation::TrimmedMean { trim: 0.4 },
        RobustAggregation::CoordinateMedian,
    ] {
        let mut sink = RobustSink::new(spec);
        let out = stream_through(&mut sink, &updates, &[0], 1).expect("one update");
        assert_eq!(bits(&out), bits(&w), "{spec:?} must return the lone update");
    }
}

#[test]
fn unanimous_byzantine_cohort_is_deterministic_not_magical() {
    // When *every* client is corrupted the same way, no aggregation
    // rule can recover the honest value — robustness only bounds the
    // damage a minority can do. What the sinks still owe us is a
    // deterministic, completion-order-invariant answer: here, the
    // corrupted value itself.
    let poisoned = vec![Tensor::from_vec(vec![-8.0, -8.0], &[2]).unwrap()];
    let updates: Cohort = (0..5).map(|_| (poisoned.clone(), 7)).collect();
    for spec in [
        RobustAggregation::TrimmedMean { trim: 0.3 },
        RobustAggregation::CoordinateMedian,
    ] {
        let reference = task_order_fold(spec, &updates);
        let out = reference.expect("non-empty round");
        assert_eq!(
            bits(&out),
            bits(&poisoned),
            "{spec:?} must converge on the unanimous (poisoned) value"
        );
        // Reversed completion order lands on the same bits.
        let mut sink = RobustSink::new(spec);
        let reversed: Vec<usize> = (0..5).rev().collect();
        let streamed = stream_through(&mut sink, &updates, &reversed, 5).expect("non-empty");
        assert_eq!(bits(&streamed), bits(&out));
    }
}
