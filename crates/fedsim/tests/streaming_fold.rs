//! Property test: the streaming fold is 0-ULP identical to the
//! retired batch FedAvg.
//!
//! The retired `ModelAggregator::fedavg` materialized every update in
//! a `&[(Vec<Tensor>, u64)]` slice and folded the slice in one pass.
//! The streaming [`FedAvgSink`] folds each update the moment it lands
//! and drops it. Both must produce bitwise-equal averages — for any
//! cohort, any completion-order permutation of the uploads, and any
//! in-flight window size — because the sink replays the exact same
//! `axpy(samples/total)` sequence in task order, no matter when each
//! upload physically arrived.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ft_fedsim::sink::{ClientUpdate, FedAvgSink, RoundManifest, TaskSpec, UpdateSink};
use ft_tensor::Tensor;

/// The retired batch FedAvg, verbatim: one pass over the materialized
/// slice, `acc += (samples/total) · w` in task order.
fn batch_fedavg(updates: &[(Vec<Tensor>, u64)]) -> Option<Vec<Tensor>> {
    let total: u64 = updates.iter().map(|(_, n)| *n).sum();
    if updates.is_empty() || total == 0 {
        return None;
    }
    let mut acc: Vec<Tensor> = updates[0]
        .0
        .iter()
        .map(|t| Tensor::zeros(t.shape().dims()))
        .collect();
    for (weights, n) in updates {
        let w = *n as f32 / total as f32;
        for (a, t) in acc.iter_mut().zip(weights) {
            a.axpy(w, t).expect("same model, same shapes");
        }
    }
    Some(acc)
}

/// Streams the same cohort through a [`FedAvgSink`], replaying the
/// engine's dispatch discipline: tasks run in windows of
/// `max_in_flight`; within a window, uploads *complete* in the given
/// permutation order and sit in a reorder buffer until the contiguous
/// task-order prefix can be absorbed (the sink rejects anything else).
fn stream_fedavg(
    updates: &[(Vec<Tensor>, u64)],
    completion: &[usize],
    max_in_flight: usize,
) -> Option<Vec<Tensor>> {
    let specs: Vec<TaskSpec> = updates
        .iter()
        .enumerate()
        .map(|(i, (_, n))| TaskSpec {
            task: i,
            client: i,
            samples: *n,
        })
        .collect();
    let mut sink = FedAvgSink::single();
    sink.begin_round(&RoundManifest {
        round: 0,
        tasks: &specs,
    })
    .unwrap();

    let mut buffered: BTreeMap<usize, ClientUpdate> = BTreeMap::new();
    let mut cursor = 0usize;
    let window_of = |task: usize| task / max_in_flight;
    for wnd in 0..updates.len().div_ceil(max_in_flight) {
        for &task in completion.iter().filter(|&&t| window_of(t) == wnd) {
            buffered.insert(
                task,
                ClientUpdate {
                    task,
                    client: task,
                    samples: updates[task].1,
                    weights: updates[task].0.clone(),
                    delta: Vec::new(),
                },
            );
            while let Some(u) = buffered.remove(&cursor) {
                sink.absorb(u).unwrap();
                cursor += 1;
            }
        }
    }
    assert!(buffered.is_empty(), "every upload must have been absorbed");
    sink.finish().unwrap();
    sink.take_average()
}

/// Per-task weights + sample counts.
type Cohort = Vec<(Vec<Tensor>, u64)>;

/// A cohort, a completion-order permutation of it, and an in-flight
/// cap.
fn cohort() -> impl Strategy<Value = (Cohort, Vec<usize>, usize)> {
    (1usize..=10).prop_flat_map(|n| {
        let one_update = (proptest::collection::vec(-1000i32..1000, 3 + 4), 0u64..500).prop_map(
            |(vals, samples)| {
                // Eighth-steps keep values exact in f32 while still
                // exercising non-trivial rounding in the fold itself.
                let f: Vec<f32> = vals.iter().map(|&v| v as f32 * 0.125).collect();
                let t1 = Tensor::from_vec(f[..3].to_vec(), &[3]).unwrap();
                let t2 = Tensor::from_vec(f[3..].to_vec(), &[4]).unwrap();
                (vec![t1, t2], samples)
            },
        );
        (
            proptest::collection::vec(one_update, n),
            proptest::collection::vec(0u64..u64::MAX, n),
            1usize..=n + 2,
        )
            .prop_map(|(updates, keys, max_in_flight)| {
                // Argsort of random keys: a uniform completion-order
                // permutation (the vendored proptest has no shuffle).
                let mut perm: Vec<usize> = (0..keys.len()).collect();
                perm.sort_by_key(|&i| (keys[i], i));
                (updates, perm, max_in_flight)
            })
    })
}

fn bits(tensors: &[Tensor]) -> Vec<u32> {
    tensors
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn streaming_fold_is_bit_identical_to_batch_fedavg(
        (updates, completion, max_in_flight) in cohort()
    ) {
        let reference = batch_fedavg(&updates);
        let streamed = stream_fedavg(&updates, &completion, max_in_flight);
        match (reference, streamed) {
            (None, None) => {}
            (Some(r), Some(s)) => {
                // Bitwise, not approximate: 0 ULP, same NaN/zero signs.
                prop_assert_eq!(bits(&r), bits(&s));
            }
            (r, s) => prop_assert!(
                false,
                "presence mismatch: batch {:?} vs streamed {:?}",
                r.is_some(),
                s.is_some()
            ),
        }
    }
}
