//! Allocation-count regression gate for the steady-state train step.
//!
//! A counting global allocator wraps the system allocator; after a
//! short warm-up, additional client train steps must perform **zero**
//! heap allocations: every transient buffer (batch gather, GEMM
//! outputs and pack panels, activation caches, loss temporaries,
//! optimizer state) is served by `ft_tensor::scratch`'s per-thread
//! pools and the layers' retained workspaces.
//!
//! Runs as a `harness = false` integration test: the default libtest
//! harness keeps service threads that allocate at unpredictable
//! moments, which would charge phantom allocations to the measured
//! window. With a plain `main` and the worker pool pinned to a single
//! thread, every allocation in the process is attributable to the
//! steps being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point; the payload is forwarded to
/// the system allocator untouched.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter itself never
// allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc`'s contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same pass-through as `alloc`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: same pass-through as `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same pass-through as `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Drives warm steps for one model/config and returns the allocation
/// count observed across `measured` post-warm-up steps.
fn allocations_during_warm_steps(
    model: &mut ft_model::CellModel,
    shard: &ft_data::ClientData,
    cfg: &ft_fedsim::trainer::LocalTrainConfig,
    warmup: usize,
    measured: usize,
) -> u64 {
    let mut stepper = ft_fedsim::trainer::LocalStepper::new(model, shard, cfg, 7);
    for _ in 0..warmup {
        stepper.step(model).expect("warm-up step trains");
    }
    let before = allocations();
    for _ in 0..measured {
        stepper.step(model).expect("measured step trains");
    }
    allocations() - before
}

fn main() {
    warm_train_step_performs_zero_heap_allocations();
    println!("alloc_steady_state: ok (warm train steps allocation-free)");
}

fn warm_train_step_performs_zero_heap_allocations() {
    // Pin the worker pool to one thread *before* anything touches it:
    // with workers, their thread-local scratch pools would need their
    // own warm-up and task assignment is not deterministic enough to
    // guarantee it within a bounded warm-up.
    std::env::set_var("FT_TENSOR_THREADS", "1");

    let data = ft_data::DatasetConfig::femnist_like()
        .with_num_clients(2)
        .with_mean_samples(40)
        .generate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::SeedableRng;

    // Dense body — the shape every canned scenario's clients train.
    let mut dense =
        ft_model::CellModel::dense(&mut rng, data.input_dim(), &[32, 32], data.num_classes());
    let sgd_cfg = ft_fedsim::trainer::LocalTrainConfig {
        local_steps: 20,
        momentum: 0.9,
        ..Default::default()
    };
    let n = allocations_during_warm_steps(&mut dense, data.client(0), &sgd_cfg, 3, 5);
    assert_eq!(
        n, 0,
        "warm dense SGD train step allocated {n} times over 5 steps \
         (expected 0; run with a heap profiler or bisect recent \
         hot-path changes to find the offender)"
    );

    // FedProx path: the fused proximal cursor must be equally clean.
    let prox_cfg = ft_fedsim::trainer::LocalTrainConfig {
        local_steps: 20,
        prox_mu: Some(0.1),
        ..Default::default()
    };
    let n = allocations_during_warm_steps(&mut dense, data.client(1), &prox_cfg, 3, 5);
    assert_eq!(
        n, 0,
        "warm FedProx train step allocated {n} times over 5 steps (expected 0)"
    );

    // Conv body — im2col forward/backward through scratch workspaces
    // (the `large-population` scenario's workload shape).
    let conv_data = ft_data::DatasetConfig::openimage_like()
        .with_num_clients(1)
        .with_mean_samples(30)
        .generate();
    let mut conv =
        ft_model::CellModel::conv(&mut rng, 1, 8, 8, &[4, 4], 3, conv_data.num_classes());
    let n = allocations_during_warm_steps(&mut conv, conv_data.client(0), &sgd_cfg, 3, 5);
    assert_eq!(
        n, 0,
        "warm conv train step allocated {n} times over 5 steps (expected 0)"
    );
}
