//! Coordinator protocol tests: the state machine's legal and illegal
//! transitions, emergent dropout and straggling, heartbeat-deadline
//! reaping, Later-then-Accept readmission, and the delivery-permutation
//! property (any within-tick message order yields the same round
//! outcome).

use proptest::prelude::*;

use ft_data::{DatasetConfig, FederatedDataset};
use ft_fedsim::coordinator::{
    Behavior, Coordinator, DeliveryOrder, InMemoryTransport, RoundOptions,
};
use ft_fedsim::device::{DeviceTrace, DeviceTraceConfig};
use ft_fedsim::roundtime::client_round_time;
use ft_fedsim::sink::DiscardSink;
use ft_fedsim::trainer::{client_seed, LocalTrainConfig, TrainTask};
use ft_fedsim::{FaultConfig, SimError};
use ft_model::CellModel;
use rand::SeedableRng;

const SEED: u64 = 42;

fn fleet(n: usize) -> DeviceTrace {
    DeviceTraceConfig::default().with_num_devices(n).generate()
}

fn dataset(n: usize) -> FederatedDataset {
    DatasetConfig::femnist_like()
        .with_num_clients(n)
        .with_mean_samples(12)
        .generate()
}

fn tiny_model(data: &FederatedDataset) -> CellModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    CellModel::dense(&mut rng, data.input_dim(), &[8], data.num_classes())
}

fn tiny_cfg() -> LocalTrainConfig {
    LocalTrainConfig {
        local_steps: 1,
        batch_size: 8,
        ..Default::default()
    }
}

/// Tasks all downloading entry 0 of a one-model round table.
fn tasks_for(clients: &[usize], round_seed: u64) -> Vec<TrainTask> {
    clients
        .iter()
        .map(|&c| TrainTask {
            client: c,
            model: 0,
            seed: client_seed(round_seed, c),
        })
        .collect()
}

// ---------------------------------------------------------------------
// State machine transitions, table-driven.
// ---------------------------------------------------------------------

/// Every externally observable coordinator phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum At {
    Standby,
    Selecting,
    Aggregating,
    Finished,
}

/// Every protocol action a caller can attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Do {
    Begin,
    Train,
    Finish,
    Shutdown,
}

struct Fixture {
    coord: Coordinator,
    data: FederatedDataset,
    model: CellModel,
    cfg: LocalTrainConfig,
    admitted: Vec<usize>,
}

impl Fixture {
    fn new() -> Self {
        let n = 4;
        let data = dataset(n);
        let model = tiny_model(&data);
        Fixture {
            coord: Coordinator::new(SEED, FaultConfig::default(), fleet(n)),
            data,
            model,
            cfg: tiny_cfg(),
            admitted: Vec::new(),
        }
    }

    /// Drives the coordinator into the given phase via legal actions.
    fn reach(&mut self, at: At) {
        match at {
            At::Standby => {}
            At::Selecting => {
                self.admitted = self.coord.begin_round(0, &[0, 1]).unwrap();
            }
            At::Aggregating => {
                self.admitted = self.coord.begin_round(0, &[0, 1]).unwrap();
                let tasks = tasks_for(&self.admitted, SEED);
                self.coord
                    .train(
                        tasks,
                        std::slice::from_ref(&self.model),
                        self.data.clients(),
                        &self.cfg,
                        &mut DiscardSink,
                    )
                    .unwrap();
            }
            At::Finished => {
                self.coord.shutdown().unwrap();
            }
        }
    }

    /// Attempts one protocol action, reporting only success/failure.
    fn attempt(&mut self, action: Do) -> Result<(), SimError> {
        match action {
            Do::Begin => {
                let round = self.coord.round();
                self.coord.begin_round(round, &[0, 1]).map(|_| ())
            }
            Do::Train => {
                let tasks = tasks_for(&self.admitted, SEED);
                self.coord
                    .train(
                        tasks,
                        std::slice::from_ref(&self.model),
                        self.data.clients(),
                        &self.cfg,
                        &mut DiscardSink,
                    )
                    .map(|_| ())
            }
            Do::Finish => self.coord.finish_round(),
            Do::Shutdown => self.coord.shutdown(),
        }
    }
}

#[test]
fn every_transition_in_the_table_behaves_as_specified() {
    // (phase, action, legal?) — the full protocol matrix. Anything
    // marked illegal must fail with `SimError::Protocol` and leave the
    // coordinator's phase unchanged.
    let table: &[(At, Do, bool)] = &[
        (At::Standby, Do::Begin, true),
        (At::Standby, Do::Train, false),
        (At::Standby, Do::Finish, false),
        (At::Standby, Do::Shutdown, true),
        (At::Selecting, Do::Begin, false),
        (At::Selecting, Do::Train, true),
        (At::Selecting, Do::Finish, false),
        (At::Selecting, Do::Shutdown, false),
        (At::Aggregating, Do::Begin, false),
        (At::Aggregating, Do::Train, false),
        (At::Aggregating, Do::Finish, true),
        (At::Aggregating, Do::Shutdown, false),
        (At::Finished, Do::Begin, false),
        (At::Finished, Do::Train, false),
        (At::Finished, Do::Finish, false),
        (At::Finished, Do::Shutdown, false),
    ];
    for &(at, action, legal) in table {
        let mut fx = Fixture::new();
        fx.reach(at);
        let phase_before = fx.coord.phase();
        let got = fx.attempt(action);
        if legal {
            assert!(
                got.is_ok(),
                "{at:?} + {action:?} must be legal, got {got:?}"
            );
        } else {
            match got {
                Err(SimError::Protocol { .. }) => {}
                other => panic!("{at:?} + {action:?} must be a protocol error, got {other:?}"),
            }
            assert_eq!(
                fx.coord.phase(),
                phase_before,
                "a rejected {action:?} must not move the {at:?} machine"
            );
        }
    }
}

#[test]
fn begin_round_enforces_the_round_sequence() {
    let mut c = Coordinator::new(SEED, FaultConfig::default(), fleet(4));
    match c.begin_round(3, &[0]) {
        Err(SimError::Protocol { .. }) => {}
        other => panic!("out-of-sequence round must be rejected, got {other:?}"),
    }
    // The rejection leaves standby intact; the correct round proceeds.
    assert_eq!(c.begin_round(0, &[0]).unwrap(), vec![0]);
}

#[test]
fn train_rejects_tasks_for_unadmitted_clients() {
    let data = dataset(4);
    let model = tiny_model(&data);
    let mut c = Coordinator::new(SEED, FaultConfig::default(), fleet(4));
    c.begin_round(0, &[0, 1]).unwrap();
    let stray = tasks_for(&[2], SEED);
    match c.train(
        stray,
        std::slice::from_ref(&model),
        data.clients(),
        &tiny_cfg(),
        &mut DiscardSink,
    ) {
        Err(SimError::Protocol { .. }) => {}
        other => panic!("unadmitted client must be rejected, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Emergent faults and liveness.
// ---------------------------------------------------------------------

#[test]
fn rendezvous_dropout_matches_the_stateless_fault_hash() {
    let faults = FaultConfig {
        dropout_prob: 0.5,
        ..Default::default()
    };
    let invited: Vec<usize> = (0..24).collect();
    for round in 0..4u32 {
        let mut c = Coordinator::new(SEED, faults, fleet(24));
        // Fast-forward the round counter through empty rounds.
        let no_shards: &[ft_data::ClientData] = &[];
        for r in 0..round {
            c.begin_round(r, &[]).unwrap();
            c.train(Vec::new(), &[], no_shards, &tiny_cfg(), &mut DiscardSink)
                .unwrap();
            c.finish_round().unwrap();
        }
        let admitted = c.begin_round(round, &invited).unwrap();
        // The emergent cohort must admit exactly what the injected
        // fault model used to retain, in invitation order.
        let mut expected = invited.clone();
        expected.retain(|&c| !faults.drops(SEED, round, c));
        assert_eq!(admitted, expected, "round {round}");
        assert_eq!(
            c.stats().rendezvous_dropouts,
            (invited.len() - admitted.len()) as u64
        );
    }
}

#[test]
fn reply_round_times_reproduce_the_straggler_model() {
    let faults = FaultConfig {
        straggler_prob: 0.5,
        straggler_slowdown: 8.0,
        ..Default::default()
    };
    let n = 6;
    let data = dataset(n);
    let model = tiny_model(&data);
    let devices = fleet(n);
    let mut c = Coordinator::new(SEED, faults, devices.clone());
    let admitted = c.begin_round(0, &(0..n).collect::<Vec<_>>()).unwrap();
    assert_eq!(admitted.len(), n, "no dropout configured");
    let replies = c
        .train(
            tasks_for(&admitted, SEED),
            std::slice::from_ref(&model),
            data.clients(),
            &tiny_cfg(),
            &mut DiscardSink,
        )
        .unwrap();
    assert_eq!(replies.len(), n);
    for r in &replies {
        let expected = client_round_time(
            &devices.profile(r.client),
            model.macs_per_sample(),
            model.param_count(),
            r.samples,
        ) * faults.slowdown(SEED, 0, r.client);
        assert_eq!(
            r.elapsed_s.to_bits(),
            expected.to_bits(),
            "client {} round time must be bit-identical to the model",
            r.client
        );
    }
}

#[test]
fn heartbeat_deadline_reaps_a_vanished_device() {
    let n = 4;
    let data = dataset(n);
    let model = tiny_model(&data);
    let mut c = Coordinator::new(SEED, FaultConfig::default(), fleet(n));
    c.cohort_mut().set_behavior(0, 1, Behavior::Vanish);
    let admitted = c.begin_round(0, &[0, 1, 2]).unwrap();
    // A vanishing device still rendezvouses — it dies *after* accepting
    // its training payload, which only the heartbeat deadline catches.
    assert_eq!(admitted, vec![0, 1, 2]);
    let replies = c
        .train(
            tasks_for(&admitted, SEED),
            std::slice::from_ref(&model),
            data.clients(),
            &tiny_cfg(),
            &mut DiscardSink,
        )
        .unwrap();
    let responders: Vec<usize> = replies.iter().map(|r| r.client).collect();
    assert_eq!(responders, vec![0, 2], "the vanished device sends nothing");
    assert_eq!(c.stats().heartbeat_dropouts, 1);
    c.finish_round().unwrap();
    // The reaped device is not blacklisted: the next round readmits it.
    let next = c.begin_round(1, &[1]).unwrap();
    assert_eq!(next, vec![1]);
}

#[test]
fn mid_round_departure_keeps_landed_tasks_and_reaps_open_ones() {
    let n = 4;
    let data = dataset(n);
    let small = tiny_model(&data);
    let big = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        CellModel::dense(&mut rng, data.input_dim(), &[256, 256], data.num_classes())
    };
    let mut c = Coordinator::new(SEED, FaultConfig::default(), fleet(n));

    // Client 1 runs BOTH models this round; its departure falls between
    // the two completion times, so the small-model upload lands while
    // the big-model task goes silent and the deadline reaps it.
    let cfg = tiny_cfg();
    let samples = ft_fedsim::trainer::expected_samples(&cfg, data.client(1).train_len());
    let fast =
        c.cohort_mut()
            .round_time(0, 1, small.macs_per_sample(), small.param_count(), samples);
    let slow = c
        .cohort_mut()
        .round_time(0, 1, big.macs_per_sample(), big.param_count(), samples);
    assert!(
        fast < slow,
        "the big model must take longer ({fast} vs {slow})"
    );
    c.cohort_mut()
        .set_behavior(0, 1, Behavior::Depart((fast + slow) * 0.5));

    let admitted = c.begin_round(0, &[0, 1, 2]).unwrap();
    assert_eq!(
        admitted,
        vec![0, 1, 2],
        "departure is mid-round, not up-front"
    );
    let mut tasks = tasks_for(&admitted, SEED);
    tasks.push(TrainTask {
        client: 1,
        model: 1,
        seed: client_seed(SEED, 1),
    });
    let replies = c
        .train(tasks, &[small, big], data.clients(), &cfg, &mut DiscardSink)
        .unwrap();
    // Task 3 (client 1 on the big model) is the only casualty: its
    // sibling task 1 completed before the departure and still absorbs.
    let landed: Vec<(usize, usize)> = replies.iter().map(|r| (r.task, r.client)).collect();
    assert_eq!(landed, vec![(0, 0), (1, 1), (2, 2)]);
    assert_eq!(
        c.stats().heartbeat_dropouts,
        1,
        "the departed device is reaped once"
    );
    // The round still closes on the partial cohort, and the departed
    // device is not blacklisted: the next round readmits it.
    c.finish_round().unwrap();
    let next = c.begin_round(1, &[1]).unwrap();
    assert_eq!(next, vec![1]);
}

#[test]
fn slow_devices_survive_past_the_deadline_via_heartbeats() {
    let n = 3;
    let data = dataset(n);
    let model = tiny_model(&data);
    let mut c = Coordinator::new(SEED, FaultConfig::default(), fleet(n));
    // Stretch one device far past the heartbeat deadline: its result
    // arrives very late, but periodic heartbeats keep it alive.
    let opts = RoundOptions {
        heartbeat_interval_s: 1.0,
        heartbeat_deadline_s: 4.0,
        ..RoundOptions::default()
    };
    c.set_options(opts);
    c.cohort_mut().set_behavior(0, 2, Behavior::Slow(1000.0));
    let admitted = c.begin_round(0, &[0, 1, 2]).unwrap();
    let replies = c
        .train(
            tasks_for(&admitted, SEED),
            std::slice::from_ref(&model),
            data.clients(),
            &tiny_cfg(),
            &mut DiscardSink,
        )
        .unwrap();
    assert_eq!(replies.len(), 3, "the straggler must not be reaped");
    assert_eq!(c.stats().heartbeat_dropouts, 0);
    assert!(
        c.stats().heartbeats > 0,
        "the straggler heartbeat at least once"
    );
}

#[test]
fn later_then_accept_readmission() {
    let n = 6;
    let data = dataset(n);
    let model = tiny_model(&data);
    let mut c = Coordinator::new(SEED, FaultConfig::default(), fleet(n));
    // Round 0: client 5 begs for admission without an invite. It gets
    // `Later` and stays out of the cohort.
    c.cohort_mut().set_behavior(0, 5, Behavior::Eager);
    let admitted = c.begin_round(0, &[0, 1]).unwrap();
    assert_eq!(admitted, vec![0, 1], "uninvited devices are deferred");
    assert!(c.stats().later_replies >= 1, "the eager device got Later");
    let accepted_before = c.stats().accepted;
    c.train(
        tasks_for(&admitted, SEED),
        std::slice::from_ref(&model),
        data.clients(),
        &tiny_cfg(),
        &mut DiscardSink,
    )
    .unwrap();
    c.finish_round().unwrap();
    // Round 1: the same device is invited and must be admitted.
    let admitted = c.begin_round(1, &[5, 0]).unwrap();
    assert_eq!(admitted, vec![5, 0], "deferred device readmitted in order");
    assert_eq!(c.stats().accepted, accepted_before + 2);
}

// ---------------------------------------------------------------------
// Delivery-permutation property.
// ---------------------------------------------------------------------

/// One reply's digest: task, client, sample count, loss bits, time bits.
type ReplyDigest = (usize, usize, u64, u32, u64);

/// A comparable digest of one round's outcome: the admitted cohort and
/// every reply's identity, sample count, loss bits, and time bits.
fn round_outcome(order: DeliveryOrder) -> (Vec<usize>, Vec<ReplyDigest>) {
    let n = 8;
    let faults = FaultConfig {
        dropout_prob: 0.3,
        straggler_prob: 0.3,
        straggler_slowdown: 6.0,
    };
    let data = dataset(n);
    let model = tiny_model(&data);
    let mut c = Coordinator::with_transport(
        SEED,
        faults,
        fleet(n),
        Box::new(InMemoryTransport::with_order(order)),
    );
    // Extra wire noise: an uninvited device rendezvouses mid-selection.
    c.cohort_mut().set_behavior(0, 7, Behavior::Eager);
    let admitted = c.begin_round(0, &(0..7).collect::<Vec<_>>()).unwrap();
    let replies = c
        .train(
            tasks_for(&admitted, SEED),
            std::slice::from_ref(&model),
            data.clients(),
            &tiny_cfg(),
            &mut DiscardSink,
        )
        .unwrap();
    let digest = replies
        .iter()
        .map(|r| {
            (
                r.task,
                r.client,
                r.samples,
                r.avg_loss.to_bits(),
                r.elapsed_s.to_bits(),
            )
        })
        .collect();
    (admitted, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_delivery_permutation_yields_the_same_round_outcome(seed in 0u64..1_000_000) {
        let baseline = round_outcome(DeliveryOrder::Fifo);
        prop_assert_eq!(round_outcome(DeliveryOrder::Seeded(seed)), baseline.clone());
        prop_assert_eq!(round_outcome(DeliveryOrder::Lifo), baseline);
    }
}
