use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use ft_nn::{accuracy, softmax_cross_entropy, GlobalAvgPool, Linear};
use ft_tensor::Tensor;

use crate::{Cell, Head, ModelError, Result};

static NEXT_MODEL_ID: AtomicU64 = AtomicU64::new(1);

/// Unique identity of a model within the training process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub u64);

impl ModelId {
    /// Allocates a fresh id from the process-wide counter.
    pub fn fresh() -> Self {
        ModelId(NEXT_MODEL_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// The next model id the process would allocate (checkpoint metadata).
pub(crate) fn next_model_id() -> u64 {
    NEXT_MODEL_ID.load(Ordering::Relaxed)
}

/// Raises the model-id counter to at least `min_next`, so ids restored
/// from a checkpoint can never collide with freshly allocated ones.
pub(crate) fn ensure_next_model_id(min_next: u64) {
    NEXT_MODEL_ID.fetch_max(min_next, Ordering::Relaxed);
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A trainable model: an ordered list of [`Cell`]s plus a [`Head`].
///
/// `CellModel` is the unit FedTrans generates, assigns to clients,
/// trains, and aggregates. It tracks its identity and parentage so the
/// Client Manager can reason about architectural similarity.
///
/// ```
/// use ft_model::CellModel;
/// use ft_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut m = CellModel::dense(&mut rng, 4, &[8], 3);
/// let logits = m.forward(&Tensor::ones(&[2, 4]))?;
/// assert_eq!(logits.shape().dims(), &[2, 3]);
/// # Ok::<(), ft_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellModel {
    id: ModelId,
    parent: Option<ModelId>,
    generation: u32,
    cells: Vec<Cell>,
    head: Head,
    input_width: usize,
}

impl CellModel {
    /// Builds an MLP body: one dense cell per entry of `hidden`.
    pub fn dense(
        rng: &mut impl rand::Rng,
        input_dim: usize,
        hidden: &[usize],
        classes: usize,
    ) -> Self {
        let mut cells = Vec::with_capacity(hidden.len());
        let mut width = input_dim;
        for &h in hidden {
            cells.push(Cell::dense(rng, width, h));
            width = h;
        }
        let head = Head::Classifier {
            linear: Linear::new(rng, width, classes),
        };
        CellModel {
            id: ModelId::fresh(),
            parent: None,
            generation: 0,
            cells,
            head,
            input_width: input_dim,
        }
    }

    /// Builds a CNN body: one conv cell per entry of `channels`, followed
    /// by global average pooling and a classifier.
    pub fn conv(
        rng: &mut impl rand::Rng,
        in_channels: usize,
        height: usize,
        width: usize,
        channels: &[usize],
        kernel: usize,
        classes: usize,
    ) -> Self {
        let mut cells = Vec::with_capacity(channels.len());
        let mut c = in_channels;
        for &oc in channels {
            cells.push(Cell::conv(rng, c, oc, kernel, height, width));
            c = oc;
        }
        let head = Head::PoolClassifier {
            pool: GlobalAvgPool::new(c, height, width),
            linear: Linear::new(rng, c, classes),
        };
        CellModel {
            id: ModelId::fresh(),
            parent: None,
            generation: 0,
            cells,
            head,
            input_width: in_channels * height * width,
        }
    }

    /// Builds a ViT-style body: `depth` attention cells over
    /// `tokens × d_model` inputs, classified from the token mean.
    pub fn vit(
        rng: &mut impl rand::Rng,
        tokens: usize,
        d_model: usize,
        depth: usize,
        d_ff: usize,
        classes: usize,
    ) -> Self {
        let cells = (0..depth)
            .map(|_| Cell::attention(rng, tokens, d_model, d_ff))
            .collect();
        let head = Head::TokenMeanClassifier {
            tokens,
            d_model,
            linear: Linear::new(rng, d_model, classes),
            cached_batch: None,
        };
        CellModel {
            id: ModelId::fresh(),
            parent: None,
            generation: 0,
            cells,
            head,
            input_width: tokens * d_model,
        }
    }

    /// Assembles a model from parts (used by the transform engine).
    pub fn from_parts(
        cells: Vec<Cell>,
        head: Head,
        input_width: usize,
        parent: Option<ModelId>,
        generation: u32,
    ) -> Self {
        CellModel {
            id: ModelId::fresh(),
            parent,
            generation,
            cells,
            head,
            input_width,
        }
    }

    /// This model's identity.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// Identity of the model this one was transformed from, if any.
    pub fn parent(&self) -> Option<ModelId> {
        self.parent
    }

    /// Number of transformations separating this model from the seed.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The transformable body cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Mutable body cells (transform engine entry point).
    pub fn cells_mut(&mut self) -> &mut [Cell] {
        &mut self.cells
    }

    /// The classification head.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// Mutable head (transform engine entry point).
    pub fn head_mut(&mut self) -> &mut Head {
        &mut self.head
    }

    /// Decomposes the model into cells and head for surgery.
    pub fn into_parts(self) -> (Vec<Cell>, Head, usize, Option<ModelId>, u32) {
        (
            self.cells,
            self.head,
            self.input_width,
            self.parent,
            self.generation,
        )
    }

    /// Expected flat input width per sample.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.head.classes()
    }

    /// Forward pass producing logits.
    ///
    /// # Errors
    ///
    /// Propagates layer geometry errors.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for cell in &mut self.cells {
            h = cell.forward(&h)?;
        }
        self.head.forward(&h)
    }

    /// Backward pass from a logits gradient; accumulates all parameter
    /// gradients and returns the input gradient.
    ///
    /// # Errors
    ///
    /// Propagates missing-cache errors.
    pub fn backward(&mut self, dlogits: &Tensor) -> Result<Tensor> {
        let mut g = self.head.backward(dlogits)?;
        for cell in self.cells.iter_mut().rev() {
            g = cell.backward(&g)?;
        }
        Ok(g)
    }

    /// Runs one forward/backward pass with softmax cross-entropy,
    /// accumulating gradients. Returns `(loss, accuracy)`.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors (bad geometry, bad labels).
    pub fn loss_and_grad(&mut self, x: &Tensor, labels: &[usize]) -> Result<(f32, f32)> {
        let logits = self.forward(x)?;
        let acc = accuracy(&logits, labels)?;
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels)?;
        self.backward(&dlogits)?;
        Ok((loss, acc))
    }

    /// Evaluates loss and accuracy without touching gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> Result<(f32, f32)> {
        let logits = self.forward(x)?;
        let acc = accuracy(&logits, labels)?;
        let (loss, _) = softmax_cross_entropy(&logits, labels)?;
        // Forward caching is harmless here; clear it by zeroing nothing.
        Ok((loss, acc))
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for cell in &mut self.cells {
            cell.zero_grad();
        }
        self.head.zero_grad();
    }

    /// Immutable references to every parameter tensor, body-first.
    pub fn param_tensors(&self) -> Vec<&Tensor> {
        let mut out: Vec<&Tensor> = Vec::new();
        for cell in &self.cells {
            out.extend(cell.param_tensors());
        }
        out.push(self.head.linear().weight());
        out.push(self.head.linear().bias());
        out
    }

    /// Mutable references to every parameter tensor, body-first.
    pub fn param_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = Vec::new();
        for cell in &mut self.cells {
            out.extend(cell.param_tensors_mut());
        }
        let (w, b) = self.head.linear_mut().params_mut();
        out.push(w);
        out.push(b);
        out
    }

    /// Visits `(mutable parameter, gradient)` pairs body-first — the
    /// same stable sequence as [`CellModel::param_tensors_mut`] zipped
    /// with [`CellModel::grad_tensors`], but with no reference vectors
    /// and no gradient clones. Optimizer step cursors
    /// (`ft_nn::Sgd::begin_step`) consume this stream directly, which
    /// is what makes the warm train step allocation-free.
    pub fn for_each_param_and_grad(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        for cell in &mut self.cells {
            cell.for_each_param_and_grad(f);
        }
        self.head.for_each_param_and_grad(f);
    }

    /// Immutable references to every gradient tensor, body-first.
    pub fn grad_tensors(&self) -> Vec<&Tensor> {
        let mut out: Vec<&Tensor> = Vec::new();
        for cell in &self.cells {
            out.extend(cell.grad_tensors());
        }
        out.push(self.head.linear().grad_weight());
        out.push(self.head.linear().grad_bias());
        out
    }

    /// Clones every parameter tensor (a weight snapshot).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.param_tensors().into_iter().cloned().collect()
    }

    /// Restores parameters from a snapshot taken on an identically
    /// shaped model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IncompatibleModels`] on count or shape
    /// mismatch.
    pub fn restore(&mut self, snapshot: &[Tensor]) -> Result<()> {
        let mut params = self.param_tensors_mut();
        if params.len() != snapshot.len() {
            return Err(ModelError::IncompatibleModels {
                detail: format!(
                    "snapshot has {} tensors, model has {}",
                    snapshot.len(),
                    params.len()
                ),
            });
        }
        for (p, s) in params.iter_mut().zip(snapshot) {
            if p.shape() != s.shape() {
                return Err(ModelError::IncompatibleModels {
                    detail: format!("shape {:?} vs snapshot {:?}", p.shape(), s.shape()),
                });
            }
            **p = s.clone();
        }
        Ok(())
    }

    /// Describes how the flat tensor list of [`CellModel::snapshot`] maps
    /// onto cells: one `(cell_id, start, len)` entry per cell (in order)
    /// plus a final entry with `cell_id = None` for the head. Cross-model
    /// aggregation aligns tensors through this layout — positional
    /// alignment breaks as soon as a deepen inserts a cell.
    pub fn param_layout(&self) -> Vec<(Option<crate::CellId>, usize, usize)> {
        let mut out = Vec::with_capacity(self.cells.len() + 1);
        let mut start = 0usize;
        for cell in &self.cells {
            let len = cell.param_tensors().len();
            out.push((Some(cell.id()), start, len));
            start += len;
        }
        out.push((None, start, 2));
        out
    }

    /// Re-initializes every parameter from scratch, discarding inherited
    /// weights. Used by the warm-up ablation (`FedTrans-lsw` in Table 3),
    /// which measures how much the function-preserving weight transfer
    /// contributes.
    pub fn reinitialize(&mut self, rng: &mut impl rand::Rng) {
        for cell in &mut self.cells {
            match cell {
                Cell::Dense { linear, .. } => {
                    let (inf, outf) = (linear.in_features(), linear.out_features());
                    linear.set_params(
                        ft_tensor::he_normal(rng, &[inf, outf], inf),
                        Tensor::zeros(&[outf]),
                    );
                }
                Cell::Conv { conv, .. } => {
                    let in_c = conv.in_channels();
                    let out_c = conv.out_channels();
                    let k = conv.kernel();
                    let fan_in = in_c * k * k;
                    conv.set_params(
                        ft_tensor::he_normal(rng, &[out_c, fan_in], fan_in),
                        Tensor::zeros(&[out_c]),
                        in_c,
                    );
                }
                Cell::Attention { block, .. } => {
                    let (t, d, f) = (block.tokens(), block.d_model(), block.d_ff());
                    *block = ft_nn::AttentionBlock::new(rng, t, d, f);
                }
            }
        }
        let (inf, outf) = (
            self.head.linear().in_features(),
            self.head.linear().out_features(),
        );
        self.head.linear_mut().set_params(
            ft_tensor::he_normal(rng, &[inf, outf], inf),
            Tensor::zeros(&[outf]),
        );
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.cells.iter().map(Cell::param_count).sum::<usize>() + self.head.param_count()
    }

    /// Model size in bytes (f32 storage), the paper's storage metric.
    pub fn storage_bytes(&self) -> u64 {
        self.param_count() as u64 * 4
    }

    /// Multiply-accumulate operations for one forward pass of one sample,
    /// the paper's complexity metric.
    pub fn macs_per_sample(&self) -> u64 {
        self.cells.iter().map(Cell::macs_per_sample).sum::<u64>() + self.head.macs_per_sample()
    }

    /// One-line architecture summary, e.g. `dense(8->16)+dense(16->16)`.
    pub fn arch_string(&self) -> String {
        let mut parts: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("{}({})", c.kind(), c.out_width()))
            .collect();
        parts.push(format!("head({})", self.classes()));
        parts.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn dense_model_shapes() {
        let mut m = CellModel::dense(&mut rng(), 6, &[12, 8], 4);
        let y = m.forward(&Tensor::ones(&[3, 6])).unwrap();
        assert_eq!(y.shape().dims(), &[3, 4]);
        assert_eq!(m.cells().len(), 2);
        assert_eq!(m.param_count(), 6 * 12 + 12 + 12 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn conv_model_shapes() {
        let mut m = CellModel::conv(&mut rng(), 1, 6, 6, &[4, 8], 3, 5);
        let y = m.forward(&Tensor::ones(&[2, 36])).unwrap();
        assert_eq!(y.shape().dims(), &[2, 5]);
    }

    #[test]
    fn vit_model_shapes() {
        let mut m = CellModel::vit(&mut rng(), 4, 6, 2, 12, 3);
        let y = m.forward(&Tensor::ones(&[2, 24])).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = CellModel::dense(&mut rng(), 4, &[16], 2);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0], &[2, 4]).unwrap();
        let labels = [0usize, 1];
        let mut opt = ft_nn::Sgd::new(0.5);
        let (first_loss, _) = m.loss_and_grad(&x, &labels).unwrap();
        for _ in 0..50 {
            m.zero_grad();
            m.loss_and_grad(&x, &labels).unwrap();
            let grads: Vec<Tensor> = m.grad_tensors().into_iter().cloned().collect();
            let grad_refs: Vec<&Tensor> = grads.iter().collect();
            let mut params = m.param_tensors_mut();
            opt.step(&mut params, &grad_refs).unwrap();
        }
        let (last_loss, acc) = m.evaluate(&x, &labels).unwrap();
        assert!(last_loss < first_loss);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = CellModel::dense(&mut rng(), 4, &[8], 2);
        let snap = m.snapshot();
        // Perturb.
        for p in m.param_tensors_mut() {
            p.scale_mut(2.0);
        }
        m.restore(&snap).unwrap();
        for (p, s) in m.param_tensors().iter().zip(&snap) {
            assert_eq!(*p, s);
        }
    }

    #[test]
    fn restore_rejects_bad_snapshot() {
        let mut m = CellModel::dense(&mut rng(), 4, &[8], 2);
        assert!(m.restore(&[]).is_err());
    }

    #[test]
    fn ids_are_unique_and_parentage_tracked() {
        let a = CellModel::dense(&mut rng(), 4, &[8], 2);
        let b = CellModel::dense(&mut rng(), 4, &[8], 2);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.parent(), None);
    }

    #[test]
    fn macs_increase_with_width() {
        let small = CellModel::dense(&mut rng(), 8, &[8], 4);
        let large = CellModel::dense(&mut rng(), 8, &[32], 4);
        assert!(large.macs_per_sample() > small.macs_per_sample());
    }

    #[test]
    fn param_layout_covers_all_tensors() {
        let m = CellModel::dense(&mut rng(), 4, &[8, 8], 2);
        let layout = m.param_layout();
        assert_eq!(layout.len(), 3);
        let total: usize = layout.iter().map(|(_, _, len)| len).sum();
        assert_eq!(total, m.param_tensors().len());
        // Entries are contiguous and ordered.
        let mut expect = 0;
        for (_, start, len) in &layout {
            assert_eq!(*start, expect);
            expect += len;
        }
        assert!(layout.last().unwrap().0.is_none(), "last entry is the head");
    }

    #[test]
    fn reinitialize_changes_weights_but_not_architecture() {
        let mut m = CellModel::dense(&mut rng(), 4, &[8], 2);
        let before = m.snapshot();
        let arch = m.arch_string();
        let ids: Vec<_> = m.cells().iter().map(|c| c.id()).collect();
        m.reinitialize(&mut rand::rngs::StdRng::seed_from_u64(999));
        assert_eq!(m.arch_string(), arch);
        assert_eq!(ids, m.cells().iter().map(|c| c.id()).collect::<Vec<_>>());
        assert_ne!(before[0], m.snapshot()[0]);
    }

    #[test]
    fn arch_string_is_descriptive() {
        let m = CellModel::dense(&mut rng(), 4, &[8], 2);
        assert_eq!(m.arch_string(), "dense(8)+head(2)");
    }
}
