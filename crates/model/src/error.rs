use std::fmt;

use ft_nn::NnError;
use ft_tensor::TensorError;

/// Error raised by model construction, execution, or transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A layer operation failed.
    Nn(NnError),
    /// A cell index was out of range for the model.
    NoSuchCell {
        /// The requested cell index.
        index: usize,
        /// Number of cells in the model.
        cells: usize,
    },
    /// The requested transformation is not valid for this cell.
    InvalidTransform {
        /// Explanation of why the transform was rejected.
        detail: String,
    },
    /// Two models that must share an architecture family do not.
    IncompatibleModels {
        /// Explanation of the mismatch.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Nn(e) => write!(f, "layer error: {e}"),
            ModelError::NoSuchCell { index, cells } => {
                write!(
                    f,
                    "cell index {index} out of range for model with {cells} cells"
                )
            }
            ModelError::InvalidTransform { detail } => write!(f, "invalid transform: {detail}"),
            ModelError::IncompatibleModels { detail } => {
                write!(f, "incompatible models: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<NnError> for ModelError {
    fn from(e: NnError) -> Self {
        ModelError::Nn(e)
    }
}
