//! Shape adaptation for cross-model weight sharing.
//!
//! FedTrans's soft aggregation (Eq. 5) combines weights of models with
//! different architectures, cropping a tensor "if necessary to fit the
//! shape of `w_j` as in HeteroFL". Because the transform engine appends
//! new units at the end of every axis, the top-left block of a child's
//! tensor corresponds position-for-position to its ancestor's tensor, so
//! plain corner cropping and corner overlap-adds are semantically
//! aligned for every layer type in this workspace.

use ft_tensor::Tensor;

/// Crops `src` to `dims`, taking the top-left corner. Axes where `src`
/// is smaller than `dims` keep the source extent (no padding).
///
/// Supports rank-1 and rank-2 tensors, which covers every parameter
/// tensor in the workspace.
///
/// ```
/// use ft_model::crop::crop_to;
/// use ft_tensor::Tensor;
///
/// let big = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
/// let small = crop_to(&big, &[2, 2]);
/// assert_eq!(small.data(), &[0.0, 1.0, 3.0, 4.0]);
/// ```
pub fn crop_to(src: &Tensor, dims: &[usize]) -> Tensor {
    match (src.shape().rank(), dims.len()) {
        (1, 1) => {
            let n = dims[0].min(src.len());
            // ft-lint: allow(P001) — `n` elements copied for an `[n]` shape.
            Tensor::from_vec(src.data()[..n].to_vec(), &[n]).expect("length matches")
        }
        (2, 2) => {
            let src_rows = src.shape().dims()[0];
            let src_cols = src.shape().dims()[1];
            let rows = dims[0].min(src_rows);
            let cols = dims[1].min(src_cols);
            let mut out = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                out.extend_from_slice(&src.data()[r * src_cols..r * src_cols + cols]);
            }
            // ft-lint: allow(P001) — `rows * cols` elements pushed in the loop above.
            Tensor::from_vec(out, &[rows, cols]).expect("length matches")
        }
        _ => src.clone(),
    }
}

/// Adds `weight · src` into the top-left overlap of `acc`, recording the
/// contribution weight per element in `counts`.
///
/// After accumulating every contributor, call [`finalize_overlap`] to
/// divide by the accumulated weights; elements never touched keep the
/// destination's original value.
///
/// # Panics
///
/// Panics if `acc` and `counts` have different shapes.
pub fn overlap_add(acc: &mut Tensor, counts: &mut Tensor, src: &Tensor, weight: f32) {
    assert_eq!(
        acc.shape(),
        counts.shape(),
        "acc and counts must share a shape"
    );
    match (acc.shape().rank(), src.shape().rank()) {
        (1, 1) => {
            let n = acc.len().min(src.len());
            for i in 0..n {
                acc.data_mut()[i] += weight * src.data()[i];
                counts.data_mut()[i] += weight;
            }
        }
        (2, 2) => {
            let acc_cols = acc.shape().dims()[1];
            let src_cols = src.shape().dims()[1];
            let rows = acc.shape().dims()[0].min(src.shape().dims()[0]);
            let cols = acc_cols.min(src_cols);
            for r in 0..rows {
                for c in 0..cols {
                    acc.data_mut()[r * acc_cols + c] += weight * src.data()[r * src_cols + c];
                    counts.data_mut()[r * acc_cols + c] += weight;
                }
            }
        }
        _ => {}
    }
}

/// Divides accumulated sums by accumulated weights, falling back to
/// `original` where nothing was accumulated.
///
/// # Panics
///
/// Panics if the three tensors do not share a shape.
pub fn finalize_overlap(acc: &mut Tensor, counts: &Tensor, original: &Tensor) {
    assert_eq!(acc.shape(), counts.shape());
    assert_eq!(acc.shape(), original.shape());
    for i in 0..acc.len() {
        let w = counts.data()[i];
        if w > 0.0 {
            acc.data_mut()[i] /= w;
        } else {
            acc.data_mut()[i] = original.data()[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_vector() {
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let c = crop_to(&v.unwrap(), &[2]);
        assert_eq!(c.data(), &[1.0, 2.0]);
    }

    #[test]
    fn crop_matrix_corner() {
        let m = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let c = crop_to(&m, &[2, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn crop_larger_than_source_keeps_source() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = crop_to(&m, &[4, 4]);
        assert_eq!(c.shape().dims(), &[2, 2]);
    }

    #[test]
    fn overlap_add_and_finalize_average() {
        let original = Tensor::full(&[2, 2], 9.0);
        let mut acc = Tensor::zeros(&[2, 2]);
        let mut counts = Tensor::zeros(&[2, 2]);
        let small = Tensor::from_vec(vec![2.0], &[1, 1]).unwrap();
        let full = Tensor::ones(&[2, 2]);
        overlap_add(&mut acc, &mut counts, &small, 1.0);
        overlap_add(&mut acc, &mut counts, &full, 1.0);
        finalize_overlap(&mut acc, &counts, &original);
        // Top-left got (2+1)/2; others got 1/1.
        assert_eq!(acc.data(), &[1.5, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn untouched_elements_keep_original() {
        let original = Tensor::full(&[2], 7.0);
        let mut acc = Tensor::zeros(&[2]);
        let mut counts = Tensor::zeros(&[2]);
        let small = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        overlap_add(&mut acc, &mut counts, &small, 2.0);
        finalize_overlap(&mut acc, &counts, &original);
        assert_eq!(acc.data(), &[3.0, 7.0]);
    }
}
