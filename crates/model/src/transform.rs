//! Function-preserving model transformations (§4.1 of the paper).
//!
//! Two operations grow a model:
//!
//! * **Widen** a cell by a factor: new units are copies of randomly
//!   chosen existing units, and every fan-out weight of a copied unit is
//!   divided by its replication multiplicity (Net2WiderNet, Chen et al.
//!   2015). The transformed model computes exactly the same function as
//!   its parent.
//! * **Deepen** a cell: insert identity-initialized cells after it
//!   (Net2DeeperNet). With ReLU bodies the inserted cell is the identity
//!   on the (non-negative) activations flowing between cells; attention
//!   cells use zeroed output projections, which is exact for any input.
//!
//! New units are appended at the end of their axis, so a child model's
//! parameter tensors always contain the parent's tensors as their
//! top-left block — the invariant [`crate::crop`] relies on for
//! HeteroFL-style weight sharing.

use rand::Rng;
use serde::{Deserialize, Serialize};

use ft_nn::{AttentionBlock, Conv2d, Linear, Relu};
use ft_tensor::Tensor;

use crate::{Cell, CellId, CellModel, CellOrigin, ModelError, Result};

/// A single architecture-changing operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransformOp {
    /// Widen the cell at `cell_index` by `factor` (> 1).
    Widen {
        /// Index of the transformed cell in the body.
        cell_index: usize,
        /// Width multiplier (the paper's default is 2).
        factor: f32,
    },
    /// Insert `count` identity cells after `cell_index`.
    Deepen {
        /// Index of the transformed cell in the body.
        cell_index: usize,
        /// Number of identity cells to insert (the paper's default is 1).
        count: usize,
    },
}

/// Record of a transformation, kept for experiment reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformRecord {
    /// The operation applied.
    pub op: TransformOp,
    /// Identity of the parent model.
    pub parent: crate::ModelId,
    /// Identity of the produced child model.
    pub child: crate::ModelId,
}

/// Builds the replication map for widening `old` units to `new` units.
///
/// Index `j < old` maps to itself; each new unit copies a uniformly
/// random existing unit. Returns `(mapping, multiplicity)`.
fn replication_map(rng: &mut impl Rng, old: usize, new: usize) -> (Vec<usize>, Vec<usize>) {
    let mut mapping = Vec::with_capacity(new);
    let mut multiplicity = vec![1usize; old];
    for j in 0..new {
        if j < old {
            mapping.push(j);
        } else {
            let src = rng.gen_range(0..old);
            multiplicity[src] += 1;
            mapping.push(src);
        }
    }
    (mapping, multiplicity)
}

/// Widens the columns of `w` (`[in, out]`) according to `mapping`.
fn widen_columns(w: &Tensor, mapping: &[usize]) -> Tensor {
    let rows = w.shape().dims()[0];
    let old_cols = w.shape().dims()[1];
    let new_cols = mapping.len();
    let mut out = Tensor::zeros(&[rows, new_cols]);
    for r in 0..rows {
        for (j, &src) in mapping.iter().enumerate() {
            out.data_mut()[r * new_cols + j] = w.data()[r * old_cols + src];
        }
    }
    out
}

/// Widens the rows of `w` (`[in, out]`), dividing by multiplicity —
/// the fan-out correction that preserves the function.
fn widen_rows_scaled(w: &Tensor, mapping: &[usize], multiplicity: &[usize]) -> Tensor {
    let old_rows = w.shape().dims()[0];
    let cols = w.shape().dims()[1];
    let new_rows = mapping.len();
    let mut out = Tensor::zeros(&[new_rows, cols]);
    for (j, &src) in mapping.iter().enumerate() {
        debug_assert!(src < old_rows);
        let scale = 1.0 / multiplicity[src] as f32;
        for c in 0..cols {
            out.data_mut()[j * cols + c] = w.data()[src * cols + c] * scale;
        }
    }
    out
}

/// Widens a vector (bias) according to `mapping`.
fn widen_vector(v: &Tensor, mapping: &[usize]) -> Tensor {
    let data: Vec<f32> = mapping.iter().map(|&src| v.data()[src]).collect();
    // ft-lint: allow(P001) — one element gathered per mapping slot.
    Tensor::from_vec(data, &[mapping.len()]).expect("length matches mapping")
}

/// Widens the input-channel blocks of a conv weight
/// (`[out_c, in_c·k·k]`), dividing each copied block by multiplicity.
fn widen_conv_in_channels(
    w: &Tensor,
    mapping: &[usize],
    multiplicity: &[usize],
    kernel: usize,
) -> Tensor {
    let out_c = w.shape().dims()[0];
    let kk = kernel * kernel;
    let old_cols = w.shape().dims()[1];
    let new_cols = mapping.len() * kk;
    let mut out = Tensor::zeros(&[out_c, new_cols]);
    for oc in 0..out_c {
        for (j, &src) in mapping.iter().enumerate() {
            let scale = 1.0 / multiplicity[src] as f32;
            for p in 0..kk {
                out.data_mut()[oc * new_cols + j * kk + p] =
                    w.data()[oc * old_cols + src * kk + p] * scale;
            }
        }
    }
    out
}

/// Produces a new model whose `cell_index`-th cell is widened by
/// `factor`, warm-started from the parent's weights so that parent and
/// child compute the same function.
///
/// # Errors
///
/// Returns [`ModelError::NoSuchCell`] for a bad index and
/// [`ModelError::InvalidTransform`] when `factor <= 1` or the cell's
/// successor cannot absorb the widening.
pub fn widen_cell(
    parent: &CellModel,
    cell_index: usize,
    factor: f32,
    rng: &mut impl Rng,
) -> Result<CellModel> {
    if factor <= 1.0 {
        return Err(ModelError::InvalidTransform {
            detail: format!("widen factor must exceed 1, got {factor}"),
        });
    }
    if cell_index >= parent.cells().len() {
        return Err(ModelError::NoSuchCell {
            index: cell_index,
            cells: parent.cells().len(),
        });
    }
    let parent_id = parent.id();
    let generation = parent.generation() + 1;
    let (mut cells, mut head, input_width, _, _) = parent.clone().into_parts();
    for cell in &mut cells {
        cell.set_origin(CellOrigin::Inherited);
    }

    match &mut cells[cell_index] {
        Cell::Dense { linear, origin, .. } => {
            let old_out = linear.out_features();
            let new_out = ((old_out as f32 * factor).round() as usize).max(old_out + 1);
            let (mapping, mult) = replication_map(rng, old_out, new_out);
            let w = widen_columns(linear.weight(), &mapping);
            let b = widen_vector(linear.bias(), &mapping);
            linear.set_params(w, b);
            *origin = CellOrigin::Widened;
            // Patch the successor's input rows.
            if cell_index + 1 < cells.len() {
                match &mut cells[cell_index + 1] {
                    Cell::Dense { linear: next, .. } => {
                        let w2 = widen_rows_scaled(next.weight(), &mapping, &mult);
                        let b2 = next.bias().clone();
                        next.set_params(w2, b2);
                    }
                    other => {
                        return Err(ModelError::InvalidTransform {
                            detail: format!(
                                "dense cell followed by {} cell cannot be widened",
                                other.kind()
                            ),
                        })
                    }
                }
            } else {
                let w2 = widen_rows_scaled(head.linear().weight(), &mapping, &mult);
                let b2 = head.linear().bias().clone();
                head.linear_mut().set_params(w2, b2);
            }
        }
        Cell::Conv { conv, origin, .. } => {
            let old_out = conv.out_channels();
            let new_out = ((old_out as f32 * factor).round() as usize).max(old_out + 1);
            let (mapping, mult) = replication_map(rng, old_out, new_out);
            let kernel = conv.kernel();
            let (h, wdim) = conv.spatial();
            // New output channels copy source channel rows.
            let mut w = Tensor::zeros(&[new_out, conv.weight().shape().dims()[1]]);
            let cols = conv.weight().shape().dims()[1];
            for (j, &src) in mapping.iter().enumerate() {
                for c in 0..cols {
                    w.data_mut()[j * cols + c] = conv.weight().data()[src * cols + c];
                }
            }
            let b = widen_vector(conv.bias(), &mapping);
            let in_c = conv.in_channels();
            *conv = Conv2d::from_params(w, b, in_c, kernel, h, wdim);
            *origin = CellOrigin::Widened;
            if cell_index + 1 < cells.len() {
                match &mut cells[cell_index + 1] {
                    Cell::Conv { conv: next, .. } => {
                        let kernel2 = next.kernel();
                        let (h2, w2dim) = next.spatial();
                        let w2 = widen_conv_in_channels(next.weight(), &mapping, &mult, kernel2);
                        let b2 = next.bias().clone();
                        *next = Conv2d::from_params(w2, b2, new_out, kernel2, h2, w2dim);
                    }
                    other => {
                        return Err(ModelError::InvalidTransform {
                            detail: format!(
                                "conv cell followed by {} cell cannot be widened",
                                other.kind()
                            ),
                        })
                    }
                }
            } else {
                head.set_input_channels(new_out);
                let w2 = widen_rows_scaled(head.linear().weight(), &mapping, &mult);
                let b2 = head.linear().bias().clone();
                head.linear_mut().set_params(w2, b2);
            }
        }
        Cell::Attention { block, origin, .. } => {
            // Widening is self-contained: grow the residual MLP width.
            let old_ff = block.d_ff();
            let new_ff = ((old_ff as f32 * factor).round() as usize).max(old_ff + 1);
            let (mapping, mult) = replication_map(rng, old_ff, new_ff);
            let [_, _, _, _, w1, w2] = block.weights();
            let new_w1 = widen_columns(w1, &mapping);
            let new_w2 = widen_rows_scaled(w2, &mapping, &mult);
            block.set_mlp(new_w1, new_w2);
            *origin = CellOrigin::Widened;
        }
    }

    Ok(CellModel::from_parts(
        cells,
        head,
        input_width,
        Some(parent_id),
        generation,
    ))
}

/// Produces a new model with `count` identity cells inserted after
/// `cell_index`, warm-started so parent and child compute the same
/// function.
///
/// # Errors
///
/// Returns [`ModelError::NoSuchCell`] for a bad index and
/// [`ModelError::InvalidTransform`] when `count == 0`.
pub fn deepen_cell(
    parent: &CellModel,
    cell_index: usize,
    count: usize,
    rng: &mut impl Rng,
) -> Result<CellModel> {
    if count == 0 {
        return Err(ModelError::InvalidTransform {
            detail: "deepen count must be at least 1".to_owned(),
        });
    }
    if cell_index >= parent.cells().len() {
        return Err(ModelError::NoSuchCell {
            index: cell_index,
            cells: parent.cells().len(),
        });
    }
    let parent_id = parent.id();
    let generation = parent.generation() + 1;
    let (mut cells, head, input_width, _, _) = parent.clone().into_parts();
    for cell in &mut cells {
        cell.set_origin(CellOrigin::Inherited);
    }

    let template = &cells[cell_index];
    let mut inserted: Vec<Cell> = Vec::with_capacity(count);
    for _ in 0..count {
        let new_cell = match template {
            Cell::Dense { linear, .. } => Cell::Dense {
                id: CellId::fresh(),
                origin: CellOrigin::Inserted,
                linear: Linear::identity(linear.out_features()),
                relu: Relu::new(),
            },
            Cell::Conv { conv, .. } => {
                let (h, w) = conv.spatial();
                Cell::Conv {
                    id: CellId::fresh(),
                    origin: CellOrigin::Inserted,
                    conv: Conv2d::identity(conv.out_channels(), conv.kernel(), h, w),
                    relu: Relu::new(),
                }
            }
            Cell::Attention { block, .. } => Cell::Attention {
                id: CellId::fresh(),
                origin: CellOrigin::Inserted,
                block: AttentionBlock::identity(rng, block.tokens(), block.d_model(), block.d_ff()),
            },
        };
        inserted.push(new_cell);
    }
    // Insert after cell_index, preserving order.
    let tail = cells.split_off(cell_index + 1);
    cells.extend(inserted);
    cells.extend(tail);

    Ok(CellModel::from_parts(
        cells,
        head,
        input_width,
        Some(parent_id),
        generation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn assert_function_preserved(parent: &mut CellModel, child: &mut CellModel, input_dim: usize) {
        let mut r = rng(99);
        let x = ft_tensor::uniform(&mut r, &[4, input_dim], -1.0, 1.0);
        let yp = parent.forward(&x).unwrap();
        let yc = child.forward(&x).unwrap();
        assert_eq!(yp.shape(), yc.shape());
        for (a, b) in yp.data().iter().zip(yc.data()) {
            assert!(
                (a - b).abs() < 1e-3,
                "transform changed the function: {a} vs {b}"
            );
        }
    }

    #[test]
    fn widen_dense_preserves_function() {
        let mut parent = CellModel::dense(&mut rng(1), 6, &[10, 10], 4);
        for idx in 0..2 {
            let mut child = widen_cell(&parent, idx, 2.0, &mut rng(2)).unwrap();
            assert_function_preserved(&mut parent, &mut child, 6);
            assert!(child.param_count() > parent.param_count());
            assert_eq!(child.parent(), Some(parent.id()));
        }
    }

    #[test]
    fn widen_last_dense_patches_head() {
        let parent = CellModel::dense(&mut rng(3), 5, &[8], 3);
        let mut p = parent.clone();
        let mut child = widen_cell(&parent, 0, 2.0, &mut rng(4)).unwrap();
        assert_function_preserved(&mut p, &mut child, 5);
        assert_eq!(child.cells()[0].out_width(), 16);
        assert_eq!(child.head().linear().in_features(), 16);
    }

    #[test]
    fn widen_conv_preserves_function() {
        let mut parent = CellModel::conv(&mut rng(5), 1, 5, 5, &[3, 5], 3, 4);
        for idx in 0..2 {
            let mut child = widen_cell(&parent, idx, 2.0, &mut rng(6)).unwrap();
            assert_function_preserved(&mut parent, &mut child, 25);
        }
    }

    #[test]
    fn widen_attention_preserves_function() {
        let mut parent = CellModel::vit(&mut rng(7), 4, 4, 2, 8, 3);
        let mut child = widen_cell(&parent, 1, 2.0, &mut rng(8)).unwrap();
        assert_function_preserved(&mut parent, &mut child, 16);
    }

    #[test]
    fn widen_fractional_factor() {
        let parent = CellModel::dense(&mut rng(9), 4, &[10], 3);
        let mut p = parent.clone();
        let mut child = widen_cell(&parent, 0, 1.5, &mut rng(10)).unwrap();
        assert_eq!(child.cells()[0].out_width(), 15);
        assert_function_preserved(&mut p, &mut child, 4);
    }

    #[test]
    fn widen_rejects_bad_args() {
        let parent = CellModel::dense(&mut rng(11), 4, &[8], 3);
        assert!(widen_cell(&parent, 0, 1.0, &mut rng(12)).is_err());
        assert!(widen_cell(&parent, 5, 2.0, &mut rng(12)).is_err());
    }

    #[test]
    fn deepen_dense_preserves_function() {
        let mut parent = CellModel::dense(&mut rng(13), 6, &[10], 4);
        let mut child = deepen_cell(&parent, 0, 1, &mut rng(14)).unwrap();
        assert_eq!(child.cells().len(), 2);
        assert_function_preserved(&mut parent, &mut child, 6);
    }

    #[test]
    fn deepen_conv_preserves_function() {
        let mut parent = CellModel::conv(&mut rng(15), 1, 5, 5, &[4], 3, 3);
        let mut child = deepen_cell(&parent, 0, 2, &mut rng(16)).unwrap();
        assert_eq!(child.cells().len(), 3);
        assert_function_preserved(&mut parent, &mut child, 25);
    }

    #[test]
    fn deepen_attention_preserves_function() {
        let mut parent = CellModel::vit(&mut rng(17), 3, 4, 1, 8, 3);
        let mut child = deepen_cell(&parent, 0, 1, &mut rng(18)).unwrap();
        assert_function_preserved(&mut parent, &mut child, 12);
    }

    #[test]
    fn deepen_marks_origins() {
        let parent = CellModel::dense(&mut rng(19), 4, &[8], 3);
        let child = deepen_cell(&parent, 0, 1, &mut rng(20)).unwrap();
        assert_eq!(child.cells()[0].origin(), CellOrigin::Inherited);
        assert_eq!(child.cells()[1].origin(), CellOrigin::Inserted);
        // Inherited cell keeps its identity; inserted cell gets a new one.
        assert_eq!(child.cells()[0].id(), parent.cells()[0].id());
        assert_ne!(child.cells()[1].id(), parent.cells()[0].id());
    }

    #[test]
    fn deepen_rejects_bad_args() {
        let parent = CellModel::dense(&mut rng(21), 4, &[8], 3);
        assert!(deepen_cell(&parent, 0, 0, &mut rng(22)).is_err());
        assert!(deepen_cell(&parent, 3, 1, &mut rng(22)).is_err());
    }

    #[test]
    fn widened_child_can_train() {
        let parent = CellModel::dense(&mut rng(23), 4, &[8], 2);
        let mut child = widen_cell(&parent, 0, 2.0, &mut rng(24)).unwrap();
        let x = ft_tensor::uniform(&mut rng(25), &[4, 4], -1.0, 1.0);
        let labels = [0usize, 1, 0, 1];
        let mut opt = ft_nn::Sgd::new(0.1);
        let (first, _) = child.loss_and_grad(&x, &labels).unwrap();
        for _ in 0..30 {
            child.zero_grad();
            child.loss_and_grad(&x, &labels).unwrap();
            let grads: Vec<Tensor> = child.grad_tensors().into_iter().cloned().collect();
            let refs: Vec<&Tensor> = grads.iter().collect();
            let mut params = child.param_tensors_mut();
            opt.step(&mut params, &refs).unwrap();
        }
        let (last, _) = child.evaluate(&x, &labels).unwrap();
        assert!(last < first);
    }

    #[test]
    fn repeated_transforms_compose() {
        let mut m = CellModel::dense(&mut rng(26), 4, &[6], 3);
        let mut r = rng(27);
        for step in 0..4 {
            let mut orig = m.clone();
            let mut next = if step % 2 == 0 {
                widen_cell(&m, 0, 2.0, &mut r).unwrap()
            } else {
                deepen_cell(&m, 0, 1, &mut r).unwrap()
            };
            assert_function_preserved(&mut orig, &mut next, 4);
            assert_eq!(next.generation(), m.generation() + 1);
            m = next;
        }
        assert!(m.cells().len() >= 3);
    }
}
