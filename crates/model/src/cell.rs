use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use ft_nn::{AttentionBlock, Conv2d, Linear, Relu};
use ft_tensor::Tensor;

use crate::Result;

static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Globally unique identity of a cell, preserved across model cloning
/// and widening so that architectural similarity can match cells between
/// a model and its descendants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u64);

impl CellId {
    /// Allocates a fresh id from the process-wide counter.
    pub fn fresh() -> Self {
        CellId(NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// The next cell id the process would allocate (checkpoint metadata).
pub(crate) fn next_cell_id() -> u64 {
    NEXT_CELL_ID.load(Ordering::Relaxed)
}

/// Raises the cell-id counter to at least `min_next`, so ids restored
/// from a checkpoint can never collide with freshly allocated ones.
pub(crate) fn ensure_next_cell_id(min_next: u64) {
    NEXT_CELL_ID.fetch_max(min_next, Ordering::Relaxed);
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// How a cell came to exist, relative to its model's parent.
///
/// Mirrors the cases of the paper's cell-wise matching degree `mc(l)`:
/// inherited (1), widened (param ratio), inserted by deepen (0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellOrigin {
    /// Present in the initial (seed) model.
    Seed,
    /// Inherited unchanged from the parent model.
    Inherited,
    /// Produced by widening a parent cell.
    Widened,
    /// Inserted as an identity cell by a deepen operation.
    Inserted,
}

/// The architectural kind of a cell, used for quick structural summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Fully connected block (`Linear` + ReLU).
    Dense,
    /// Convolutional block (`Conv2d` + ReLU).
    Conv,
    /// Self-attention block with residual MLP.
    Attention,
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellKind::Dense => write!(f, "dense"),
            CellKind::Conv => write!(f, "conv"),
            CellKind::Attention => write!(f, "attention"),
        }
    }
}

/// The minimum transformable component of a model architecture.
///
/// A `Cell` bundles a parametric layer with its activation and carries
/// the identity/lineage metadata the similarity metric needs. FedTrans
/// widens or deepens whole cells, never individual tensors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Cell {
    /// Fully connected block.
    Dense {
        /// Persistent identity for similarity matching.
        id: CellId,
        /// Provenance relative to the parent model.
        origin: CellOrigin,
        /// The linear layer.
        linear: Linear,
        /// Its ReLU activation.
        relu: Relu,
    },
    /// Convolutional block.
    Conv {
        /// Persistent identity for similarity matching.
        id: CellId,
        /// Provenance relative to the parent model.
        origin: CellOrigin,
        /// The convolution layer.
        conv: Conv2d,
        /// Its ReLU activation.
        relu: Relu,
    },
    /// Self-attention block (contains its own residual nonlinearity).
    Attention {
        /// Persistent identity for similarity matching.
        id: CellId,
        /// Provenance relative to the parent model.
        origin: CellOrigin,
        /// The attention block.
        block: AttentionBlock,
    },
}

impl Cell {
    /// Builds a dense cell with fresh identity.
    pub fn dense(rng: &mut impl rand::Rng, in_features: usize, out_features: usize) -> Self {
        Cell::Dense {
            id: CellId::fresh(),
            origin: CellOrigin::Seed,
            linear: Linear::new(rng, in_features, out_features),
            relu: Relu::new(),
        }
    }

    /// Builds a conv cell with fresh identity.
    pub fn conv(
        rng: &mut impl rand::Rng,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        height: usize,
        width: usize,
    ) -> Self {
        Cell::Conv {
            id: CellId::fresh(),
            origin: CellOrigin::Seed,
            conv: Conv2d::new(rng, in_channels, out_channels, kernel, height, width),
            relu: Relu::new(),
        }
    }

    /// Builds an attention cell with fresh identity.
    pub fn attention(rng: &mut impl rand::Rng, tokens: usize, d_model: usize, d_ff: usize) -> Self {
        Cell::Attention {
            id: CellId::fresh(),
            origin: CellOrigin::Seed,
            block: AttentionBlock::new(rng, tokens, d_model, d_ff),
        }
    }

    /// The cell's persistent identity.
    pub fn id(&self) -> CellId {
        match self {
            Cell::Dense { id, .. } | Cell::Conv { id, .. } | Cell::Attention { id, .. } => *id,
        }
    }

    /// The cell's provenance.
    pub fn origin(&self) -> CellOrigin {
        match self {
            Cell::Dense { origin, .. }
            | Cell::Conv { origin, .. }
            | Cell::Attention { origin, .. } => *origin,
        }
    }

    /// Overwrites the cell's provenance (used by the transform engine).
    pub fn set_origin(&mut self, new_origin: CellOrigin) {
        match self {
            Cell::Dense { origin, .. }
            | Cell::Conv { origin, .. }
            | Cell::Attention { origin, .. } => *origin = new_origin,
        }
    }

    /// The architectural kind.
    pub fn kind(&self) -> CellKind {
        match self {
            Cell::Dense { .. } => CellKind::Dense,
            Cell::Conv { .. } => CellKind::Conv,
            Cell::Attention { .. } => CellKind::Attention,
        }
    }

    /// Output width: features for dense cells, channels for conv cells,
    /// `tokens·d_model` for attention cells.
    pub fn out_width(&self) -> usize {
        match self {
            Cell::Dense { linear, .. } => linear.out_features(),
            Cell::Conv { conv, .. } => conv.out_channels(),
            Cell::Attention { block, .. } => block.tokens() * block.d_model(),
        }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (geometry mismatches).
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        match self {
            Cell::Dense { linear, relu, .. } => {
                let y = linear.forward(x)?;
                Ok(relu.forward(&y))
            }
            Cell::Conv { conv, relu, .. } => {
                let y = conv.forward(x)?;
                Ok(relu.forward(&y))
            }
            Cell::Attention { block, .. } => Ok(block.forward(x)?),
        }
    }

    /// Backward pass; accumulates parameter gradients, returns `dX`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (missing forward cache).
    pub fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        match self {
            Cell::Dense { linear, relu, .. } => {
                let dz = relu.backward(dy)?;
                Ok(linear.backward(&dz)?)
            }
            Cell::Conv { conv, relu, .. } => {
                let dz = relu.backward(dy)?;
                Ok(conv.backward(&dz)?)
            }
            Cell::Attention { block, .. } => Ok(block.backward(dy)?),
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        match self {
            Cell::Dense { linear, .. } => linear.zero_grad(),
            Cell::Conv { conv, .. } => conv.zero_grad(),
            Cell::Attention { block, .. } => block.zero_grad(),
        }
    }

    /// Immutable references to every parameter tensor in layer order.
    pub fn param_tensors(&self) -> Vec<&Tensor> {
        match self {
            Cell::Dense { linear, .. } => vec![linear.weight(), linear.bias()],
            Cell::Conv { conv, .. } => vec![conv.weight(), conv.bias()],
            Cell::Attention { block, .. } => block.weights().to_vec(),
        }
    }

    /// Mutable references to every parameter tensor in layer order.
    pub fn param_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Cell::Dense { linear, .. } => {
                let (w, b) = linear.params_mut();
                vec![w, b]
            }
            Cell::Conv { conv, .. } => {
                let (w, b) = conv.params_mut();
                vec![w, b]
            }
            Cell::Attention { block, .. } => block.weights_mut().into_iter().collect(),
        }
    }

    /// Visits `(mutable parameter, gradient)` pairs in layer order —
    /// same sequence as [`Cell::param_tensors_mut`] zipped with
    /// [`Cell::grad_tensors`], without materializing either vector.
    pub fn for_each_param_and_grad(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        match self {
            Cell::Dense { linear, .. } => linear.for_each_param_and_grad(f),
            Cell::Conv { conv, .. } => conv.for_each_param_and_grad(f),
            Cell::Attention { block, .. } => block.for_each_param_and_grad(f),
        }
    }

    /// Immutable references to every gradient tensor in layer order.
    pub fn grad_tensors(&self) -> Vec<&Tensor> {
        match self {
            Cell::Dense { linear, .. } => vec![linear.grad_weight(), linear.grad_bias()],
            Cell::Conv { conv, .. } => vec![conv.grad_weight(), conv.grad_bias()],
            Cell::Attention { block, .. } => block.grads().iter().collect(),
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.param_tensors().iter().map(|t| t.len()).sum()
    }

    /// Multiply-accumulate operations for one sample.
    pub fn macs_per_sample(&self) -> u64 {
        match self {
            Cell::Dense { linear, .. } => linear.macs_per_sample(),
            Cell::Conv { conv, .. } => conv.macs_per_sample(),
            Cell::Attention { block, .. } => block.macs_per_sample(),
        }
    }

    /// Euclidean norm of all weights, used to normalize activeness.
    pub fn weight_norm(&self) -> f32 {
        self.param_tensors()
            .iter()
            .map(|t| {
                let n = t.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Euclidean norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grad_tensors()
            .iter()
            .map(|t| {
                let n = t.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// The cell activeness `‖∇w‖ / ‖w‖` from §4.1, the paper's signal
    /// for which cells bottleneck convergence.
    pub fn activeness(&self) -> f32 {
        let w = self.weight_norm();
        if w <= f32::EPSILON {
            0.0
        } else {
            self.grad_norm() / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fresh_ids_are_unique() {
        let a = CellId::fresh();
        let b = CellId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn dense_cell_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut cell = Cell::dense(&mut rng, 4, 8);
        assert_eq!(cell.kind(), CellKind::Dense);
        assert_eq!(cell.out_width(), 8);
        let y = cell.forward(&Tensor::ones(&[2, 4])).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8]);
        let dx = cell.backward(&Tensor::ones(&[2, 8])).unwrap();
        assert_eq!(dx.shape().dims(), &[2, 4]);
    }

    #[test]
    fn param_count_matches_tensors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cell = Cell::conv(&mut rng, 2, 4, 3, 5, 5);
        assert_eq!(cell.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn activeness_is_zero_before_backward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cell = Cell::dense(&mut rng, 4, 4);
        assert_eq!(cell.activeness(), 0.0);
    }

    #[test]
    fn activeness_positive_after_backward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // 16 units so the gradient cannot plausibly die through an
        // all-negative ReLU layer for any seed (p = 2^-16).
        let mut cell = Cell::dense(&mut rng, 4, 16);
        let y = cell.forward(&Tensor::ones(&[1, 4])).unwrap();
        cell.backward(&Tensor::ones(y.shape().dims())).unwrap();
        assert!(cell.activeness() > 0.0);
        cell.zero_grad();
        assert_eq!(cell.activeness(), 0.0);
    }

    #[test]
    fn param_tensors_mut_are_disjoint() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut cell = Cell::dense(&mut rng, 2, 2);
        let mut params = cell.param_tensors_mut();
        // Write through both references; must not alias.
        params[0].data_mut()[0] = 42.0;
        params[1].data_mut()[0] = 7.0;
        assert_eq!(cell.param_tensors()[0].data()[0], 42.0);
        assert_eq!(cell.param_tensors()[1].data()[0], 7.0);
    }
}
