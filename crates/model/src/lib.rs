//! Cell-based model abstraction and function-preserving transformations.
//!
//! FedTrans treats a model as an ordered list of [`Cell`]s (conv blocks,
//! dense blocks, or attention blocks) terminated by a [`Head`]. The
//! Model Transformer grows a model by **widening** a bottleneck cell
//! (Net2WiderNet: replicate randomly chosen units and divide the fan-out
//! weights by the replication multiplicity) or **deepening** it
//! (Net2DeeperNet: insert an identity-initialized cell). Both operations
//! preserve the function computed by the network, which is what lets
//! FedTrans warm-start every new model from its parent's weights.
//!
//! This crate owns:
//! - [`Cell`] / [`Head`] / [`CellModel`]: the architecture representation
//!   with forward/backward passes, parameter access, and exact MAC and
//!   parameter accounting;
//! - [`transform`]: the widen/deepen surgery;
//! - [`similarity`]: the cell-wise architectural similarity of §4.2,
//!   used for joint utility learning and soft aggregation;
//! - [`crop`]: HeteroFL-style shape adaptation for cross-model
//!   weight sharing.
//!
//! # Example
//!
//! ```
//! use ft_model::CellModel;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = CellModel::dense(&mut rng, 8, &[16, 16], 4);
//! assert_eq!(model.cells().len(), 2);
//! assert!(model.macs_per_sample() > 0);
//! ```

mod cell;
pub mod crop;
mod error;
mod head;
mod network;
pub mod similarity;
pub mod transform;

pub use cell::{Cell, CellId, CellKind, CellOrigin};
pub use error::ModelError;
pub use head::Head;
pub use network::{CellModel, ModelId};
pub use transform::{deepen_cell, widen_cell, TransformOp, TransformRecord};

/// Convenience alias for results produced by model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod smoke {
    use super::CellModel;
    use rand::SeedableRng;

    #[test]
    fn core_type_constructs_and_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model = CellModel::dense(&mut rng, 8, &[16, 16], 4);
        assert_eq!(model.cells().len(), 2);
        assert!(model.param_count() > 0);
        let y = model.forward(&ft_tensor::Tensor::ones(&[3, 8])).unwrap();
        assert_eq!(y.shape().dims(), &[3, 4]);
    }
}
