//! Cell-based model abstraction and function-preserving transformations.
//!
//! FedTrans treats a model as an ordered list of [`Cell`]s (conv blocks,
//! dense blocks, or attention blocks) terminated by a [`Head`]. The
//! Model Transformer grows a model by **widening** a bottleneck cell
//! (Net2WiderNet: replicate randomly chosen units and divide the fan-out
//! weights by the replication multiplicity) or **deepening** it
//! (Net2DeeperNet: insert an identity-initialized cell). Both operations
//! preserve the function computed by the network, which is what lets
//! FedTrans warm-start every new model from its parent's weights.
//!
//! This crate owns:
//! - [`Cell`] / [`Head`] / [`CellModel`]: the architecture representation
//!   with forward/backward passes, parameter access, and exact MAC and
//!   parameter accounting;
//! - [`transform`]: the widen/deepen surgery;
//! - [`similarity`]: the cell-wise architectural similarity of §4.2,
//!   used for joint utility learning and soft aggregation;
//! - [`crop`]: HeteroFL-style shape adaptation for cross-model
//!   weight sharing.
//!
//! # Example
//!
//! ```
//! use ft_model::CellModel;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = CellModel::dense(&mut rng, 8, &[16, 16], 4);
//! assert_eq!(model.cells().len(), 2);
//! assert!(model.macs_per_sample() > 0);
//! ```

// Enforced in depth by ft-lint (S001); the compiler backstops it here.
#![forbid(unsafe_code)]

mod cell;
pub mod crop;
mod error;
mod head;
mod network;
pub mod similarity;
pub mod transform;

pub use cell::{Cell, CellId, CellKind, CellOrigin};
pub use error::ModelError;
pub use head::Head;
pub use network::{CellModel, ModelId};
pub use transform::{deepen_cell, widen_cell, TransformOp, TransformRecord};

/// Convenience alias for results produced by model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

/// The process-wide `(next model id, next cell id)` counters.
///
/// Checkpoints record these so a resumed run can call
/// [`ensure_id_counters`] and keep freshly allocated ids disjoint from
/// every id carried inside the restored models.
pub fn id_counters() -> (u64, u64) {
    (network::next_model_id(), cell::next_cell_id())
}

/// Raises the id counters to at least the given values (monotonic:
/// never lowers them, so concurrently running models stay safe).
pub fn ensure_id_counters(next_model: u64, next_cell: u64) {
    network::ensure_next_model_id(next_model);
    cell::ensure_next_cell_id(next_cell);
}

#[cfg(test)]
mod smoke {
    use super::CellModel;
    use rand::SeedableRng;

    #[test]
    fn core_type_constructs_and_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model = CellModel::dense(&mut rng, 8, &[16, 16], 4);
        assert_eq!(model.cells().len(), 2);
        assert!(model.param_count() > 0);
        let y = model.forward(&ft_tensor::Tensor::ones(&[3, 8])).unwrap();
        assert_eq!(y.shape().dims(), &[3, 4]);
    }

    fn assert_serde_round_trip(model: &CellModel) {
        let json = serde_json::to_string(model).unwrap();
        let back: CellModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id(), model.id());
        assert_eq!(back.arch_string(), model.arch_string());
        assert_eq!(
            back.cells().iter().map(super::Cell::id).collect::<Vec<_>>(),
            model
                .cells()
                .iter()
                .map(super::Cell::id)
                .collect::<Vec<_>>()
        );
        for (a, b) in back.snapshot().iter().zip(model.snapshot().iter()) {
            assert_eq!(a, b, "weights must survive JSON byte-exactly");
        }
        // And the re-serialization is byte-identical.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn every_model_family_survives_json_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        assert_serde_round_trip(&CellModel::dense(&mut rng, 6, &[8, 4], 3));
        assert_serde_round_trip(&CellModel::conv(&mut rng, 2, 5, 5, &[4], 3, 3));
        assert_serde_round_trip(&CellModel::vit(&mut rng, 4, 6, 1, 8, 3));
    }

    #[test]
    fn id_counters_are_monotonic() {
        let (m0, c0) = super::id_counters();
        super::ensure_id_counters(m0 + 10, c0 + 10);
        let (m1, c1) = super::id_counters();
        assert!(m1 >= m0 + 10 && c1 >= c0 + 10);
        // Lowering is a no-op.
        super::ensure_id_counters(0, 0);
        let (m2, c2) = super::id_counters();
        assert!(m2 >= m1 && c2 >= c1);
    }
}
