//! Cell-wise architectural similarity (§4.2 of the paper).
//!
//! The Client Manager's joint utility learning and the Model
//! Aggregator's soft aggregation both weight cross-model information by
//! `sim(M_i, M_j) ∈ [0, 1]`. The paper defines a per-cell matching
//! degree `mc(l)` relative to the parent model:
//!
//! * `1` for a cell inherited unchanged,
//! * `#param(l') / #param(l)` for a widened cell (the inherited weight
//!   fraction),
//! * `0` for a cell inserted by deepening,
//!
//! and accumulates `mc` over all cells. We generalize parent/child
//! matching to *any* pair in the model family via persistent
//! [`CellId`]s: a cell keeps its id through inheritance and widening, so
//! the inherited-fraction rule applies between arbitrary relatives, and
//! cells private to one model contribute zero. The cumulative score is
//! normalized by the larger cell count to land in `[0, 1]`.

use std::collections::HashMap;

use crate::{Cell, CellId, CellModel};

/// Matching degree between two cells that share a [`CellId`].
///
/// Equal parameter counts give 1.0 (inherited unchanged); otherwise the
/// smaller count over the larger is the fraction of inherited weights.
pub fn cell_match(a: &Cell, b: &Cell) -> f32 {
    debug_assert_eq!(a.id(), b.id(), "cell_match requires matching identities");
    let pa = a.param_count() as f32;
    let pb = b.param_count() as f32;
    if pa == 0.0 || pb == 0.0 {
        return 0.0;
    }
    (pa.min(pb)) / (pa.max(pb))
}

/// Architectural similarity `sim(M_a, M_b) ∈ [0, 1]`.
///
/// Identical models (including a model with itself) score 1.0; models
/// with no shared lineage score 0.0.
///
/// ```
/// use ft_model::{similarity::model_similarity, CellModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let m = CellModel::dense(&mut rng, 4, &[8], 2);
/// assert_eq!(model_similarity(&m, &m), 1.0);
/// ```
pub fn model_similarity(a: &CellModel, b: &CellModel) -> f32 {
    let index_b: HashMap<CellId, &Cell> = b.cells().iter().map(|c| (c.id(), c)).collect();
    let mut score = 0.0f32;
    for cell_a in a.cells() {
        if let Some(cell_b) = index_b.get(&cell_a.id()) {
            score += cell_match(cell_a, cell_b);
        }
    }
    let denom = a.cells().len().max(b.cells().len()).max(1) as f32;
    (score / denom).clamp(0.0, 1.0)
}

/// Pairwise similarity matrix for a model suite, reused every round by
/// the aggregator instead of recomputing per pair.
pub fn similarity_matrix(models: &[&CellModel]) -> Vec<Vec<f32>> {
    let n = models.len();
    let mut m = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in (i + 1)..n {
            let s = model_similarity(models[i], models[j]);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{deepen_cell, widen_cell};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn self_similarity_is_one() {
        let m = CellModel::dense(&mut rng(0), 4, &[8, 8], 2);
        assert_eq!(model_similarity(&m, &m), 1.0);
    }

    #[test]
    fn unrelated_models_score_zero() {
        let a = CellModel::dense(&mut rng(1), 4, &[8], 2);
        let b = CellModel::dense(&mut rng(2), 4, &[8], 2);
        assert_eq!(model_similarity(&a, &b), 0.0);
    }

    #[test]
    fn widened_child_scores_between_zero_and_one() {
        let parent = CellModel::dense(&mut rng(3), 4, &[8, 8], 2);
        let child = widen_cell(&parent, 0, 2.0, &mut rng(4)).unwrap();
        let s = model_similarity(&parent, &child);
        assert!(s > 0.0 && s < 1.0, "similarity {s}");
        // Symmetric.
        assert!((model_similarity(&child, &parent) - s).abs() < 1e-6);
    }

    #[test]
    fn deepened_child_scores_less_than_one() {
        let parent = CellModel::dense(&mut rng(5), 4, &[8], 2);
        let child = deepen_cell(&parent, 0, 1, &mut rng(6)).unwrap();
        let s = model_similarity(&parent, &child);
        // One inherited cell of two total: 1/2.
        assert!((s - 0.5).abs() < 1e-6, "similarity {s}");
    }

    #[test]
    fn similarity_decays_with_distance() {
        let gen0 = CellModel::dense(&mut rng(7), 4, &[8, 8], 2);
        let gen1 = widen_cell(&gen0, 0, 2.0, &mut rng(8)).unwrap();
        let gen2 = deepen_cell(&gen1, 1, 1, &mut rng(9)).unwrap();
        let near = model_similarity(&gen1, &gen2);
        let far = model_similarity(&gen0, &gen2);
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m0 = CellModel::dense(&mut rng(10), 4, &[8], 2);
        let m1 = widen_cell(&m0, 0, 2.0, &mut rng(11)).unwrap();
        let m2 = deepen_cell(&m1, 0, 1, &mut rng(12)).unwrap();
        let mat = similarity_matrix(&[&m0, &m1, &m2]);
        for i in 0..3 {
            assert_eq!(mat[i][i], 1.0);
            for j in 0..3 {
                assert!((mat[i][j] - mat[j][i]).abs() < 1e-6);
            }
        }
    }
}
