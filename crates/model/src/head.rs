use serde::{Deserialize, Serialize};

use ft_nn::{GlobalAvgPool, Linear};
use ft_tensor::Tensor;

use crate::{ModelError, Result};

/// The classification head terminating a [`crate::CellModel`].
///
/// Heads are not transformable cells, but widening the final cell of the
/// body changes the head's input width, so the transform engine patches
/// head weights with the same Net2Wider rule it applies between cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Head {
    /// `Linear` classifier over a flat feature vector (dense bodies).
    Classifier {
        /// The linear classifier layer.
        linear: Linear,
    },
    /// Global-average-pool over channels, then a classifier (conv bodies).
    PoolClassifier {
        /// The pooling layer reducing `[B, C·H·W]` to `[B, C]`.
        pool: GlobalAvgPool,
        /// The linear classifier layer.
        linear: Linear,
    },
    /// Mean over tokens, then a classifier (attention bodies).
    TokenMeanClassifier {
        /// Token count of the incoming sequence.
        tokens: usize,
        /// Embedding dimension per token.
        d_model: usize,
        /// The linear classifier layer.
        linear: Linear,
        /// Batch size cached by the last forward pass.
        #[serde(skip)]
        cached_batch: Option<usize>,
    },
}

impl Head {
    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.linear().out_features()
    }

    /// The classifier layer.
    pub fn linear(&self) -> &Linear {
        match self {
            Head::Classifier { linear }
            | Head::PoolClassifier { linear, .. }
            | Head::TokenMeanClassifier { linear, .. } => linear,
        }
    }

    /// Mutable classifier layer (transform engine entry point).
    pub fn linear_mut(&mut self) -> &mut Linear {
        match self {
            Head::Classifier { linear }
            | Head::PoolClassifier { linear, .. }
            | Head::TokenMeanClassifier { linear, .. } => linear,
        }
    }

    /// Updates the pooled channel count after the last body cell widened.
    pub fn set_input_channels(&mut self, channels: usize) {
        if let Head::PoolClassifier { pool, .. } = self {
            pool.set_channels(channels);
        }
    }

    /// Forward pass producing logits.
    ///
    /// # Errors
    ///
    /// Propagates layer geometry errors.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        match self {
            Head::Classifier { linear } => Ok(linear.forward(x)?),
            Head::PoolClassifier { pool, linear } => {
                let pooled = pool.forward(x)?;
                Ok(linear.forward(&pooled)?)
            }
            Head::TokenMeanClassifier {
                tokens,
                d_model,
                linear,
                cached_batch,
            } => {
                let batch = x.rows()?;
                let t = *tokens;
                let d = *d_model;
                if x.cols()? != t * d {
                    return Err(ModelError::InvalidTransform {
                        detail: format!(
                            "token head expected {}x{} inputs, got {}",
                            t,
                            d,
                            x.cols()?
                        ),
                    });
                }
                // Scratch-pooled; every slot is written exactly once.
                let mut pooled = ft_tensor::scratch::take(batch * d);
                for s in 0..batch {
                    for j in 0..d {
                        let mut acc = 0.0f32;
                        for tok in 0..t {
                            acc += x.data()[s * t * d + tok * d + j];
                        }
                        pooled[s * d + j] = acc / t as f32;
                    }
                }
                *cached_batch = Some(batch);
                let pooled = Tensor::from_vec(pooled, &[batch, d])?;
                Ok(linear.forward(&pooled)?)
            }
        }
    }

    /// Backward pass from logits gradient back to the body.
    ///
    /// # Errors
    ///
    /// Propagates missing-cache errors from the layers.
    pub fn backward(&mut self, dlogits: &Tensor) -> Result<Tensor> {
        match self {
            Head::Classifier { linear } => Ok(linear.backward(dlogits)?),
            Head::PoolClassifier { pool, linear } => {
                let dpool = linear.backward(dlogits)?;
                Ok(pool.backward(&dpool)?)
            }
            Head::TokenMeanClassifier {
                tokens,
                d_model,
                linear,
                cached_batch,
            } => {
                let batch = cached_batch
                    .take()
                    .ok_or(ft_nn::NnError::MissingForwardCache {
                        layer: "TokenMeanHead",
                    })?;
                let dpool = linear.backward(dlogits)?;
                let t = *tokens;
                let d = *d_model;
                let inv = 1.0 / t as f32;
                // Scratch-pooled; every slot is written exactly once.
                let mut dx = ft_tensor::scratch::take(batch * t * d);
                for s in 0..batch {
                    for tok in 0..t {
                        for j in 0..d {
                            dx[(s * t + tok) * d + j] = dpool.data()[s * d + j] * inv;
                        }
                    }
                }
                Ok(Tensor::from_vec(dx, &[batch, t * d])?)
            }
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.linear_mut().zero_grad();
    }

    /// Visits `(mutable parameter, gradient)` pairs in layer order.
    pub fn for_each_param_and_grad(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        self.linear_mut().for_each_param_and_grad(f);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.linear().param_count()
    }

    /// Multiply-accumulate operations for one sample.
    pub fn macs_per_sample(&self) -> u64 {
        self.linear().macs_per_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classifier_head_forwards() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut head = Head::Classifier {
            linear: Linear::new(&mut rng, 4, 3),
        };
        let y = head.forward(&Tensor::ones(&[2, 4])).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(head.classes(), 3);
    }

    #[test]
    fn pool_head_reduces_channels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut head = Head::PoolClassifier {
            pool: GlobalAvgPool::new(2, 2, 2),
            linear: Linear::new(&mut rng, 2, 3),
        };
        let y = head.forward(&Tensor::ones(&[1, 8])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3]);
    }

    #[test]
    fn token_head_averages_tokens() {
        let mut head = Head::TokenMeanClassifier {
            tokens: 2,
            d_model: 2,
            linear: Linear::identity(2),
            cached_batch: None,
        };
        // Two tokens [1,2] and [3,4] -> mean [2,3] -> identity classifier.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = head.forward(&x).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0]);
    }

    #[test]
    fn token_head_backward_spreads_gradient() {
        let mut head = Head::TokenMeanClassifier {
            tokens: 2,
            d_model: 2,
            linear: Linear::identity(2),
            cached_batch: None,
        };
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        head.forward(&x).unwrap();
        let dx = head
            .backward(&Tensor::from_vec(vec![2.0, 4.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(dx.data(), &[1.0, 2.0, 1.0, 2.0]);
    }
}
