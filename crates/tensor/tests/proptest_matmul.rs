//! Property tests pinning the tiled GEMM kernels to a naive reference.
//!
//! The kernels promise bit-for-bit determinism: every output element is
//! an ascending-`k` dot product with a single `f32` accumulator,
//! regardless of blocking, tiling, or thread count. That contract makes
//! the naive triple loop below an *exact* oracle — every comparison here
//! is `0 ULP` (`assert_eq` on the raw `f32` buffers), not an epsilon
//! band.

use ft_tensor::Tensor;
use proptest::prelude::*;

/// Naive reference `A[m×k] @ B[k×n]`: ascending-`k`, one accumulator
/// per element — the accumulation order the tiled kernels guarantee.
fn reference_gemm(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows().unwrap(), a.cols().unwrap());
    let n = b.cols().unwrap();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(i, p) * b.at(p, j);
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

fn tensor_of(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, m * n)
        .prop_map(move |v| Tensor::from_vec(v, &[m, n]).unwrap())
}

/// `(A[m×k], B[k×n])` with dimensions spanning the small, tiled, and
/// edge-tile paths (sizes straddle the MR=4 / NR=8 register-tile
/// boundaries as well as the SMALL_WORK threshold).
fn gemm_operands() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=40, 1usize..=150, 1usize..=40)
        .prop_flat_map(|(m, k, n)| (tensor_of(m, k), tensor_of(k, n)))
}

proptest! {
    #[test]
    fn matmul_matches_reference_exactly((a, b) in gemm_operands()) {
        let tiled = a.matmul(&b).unwrap();
        let naive = reference_gemm(&a, &b);
        prop_assert_eq!(tiled.data(), naive.data());
    }

    #[test]
    fn t_matmul_matches_reference_exactly((a, b) in gemm_operands()) {
        // Feed A^T so the kernel's internal transpose lands on A.
        let at = a.transpose().unwrap();
        let tiled = at.t_matmul(&b).unwrap();
        let naive = reference_gemm(&a, &b);
        prop_assert_eq!(tiled.data(), naive.data());
    }

    #[test]
    fn matmul_t_matches_reference_exactly((a, b) in gemm_operands()) {
        let bt = b.transpose().unwrap();
        let tiled = a.matmul_t(&bt).unwrap();
        let naive = reference_gemm(&a, &b);
        prop_assert_eq!(tiled.data(), naive.data());
    }

    #[test]
    fn row_and_column_vector_shapes_match_reference(
        k in 1usize..=300,
        scale in 0.1f32..2.0,
    ) {
        // 1×k @ k×1 and k×1 @ 1×k: degenerate tiles in both directions.
        let row: Tensor = Tensor::from_vec(
            (0..k).map(|i| scale * (i as f32 - k as f32 / 2.0)).collect(),
            &[1, k],
        ).unwrap();
        let col = row.transpose().unwrap();
        prop_assert_eq!(
            row.matmul(&col).unwrap().data(),
            reference_gemm(&row, &col).data()
        );
        prop_assert_eq!(
            col.matmul(&row).unwrap().data(),
            reference_gemm(&col, &row).data()
        );
    }
}

#[test]
fn empty_shapes_produce_empty_or_zero_products() {
    for (m, k, n) in [(0, 5, 3), (5, 0, 3), (5, 3, 0), (0, 0, 0)] {
        let a = Tensor::zeros(&[m, k]);
        let b = Tensor::zeros(&[k, n]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[m, n]);
        assert!(c.data().iter().all(|&v| v == 0.0));

        let at = Tensor::zeros(&[k, m]);
        let c = at.t_matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[m, n]);

        let bt = Tensor::zeros(&[n, k]);
        let c = a.matmul_t(&bt).unwrap();
        assert_eq!(c.shape().dims(), &[m, n]);
    }
}

#[test]
fn kernels_agree_across_all_internal_dispatch_paths() {
    // One shape per path: small (< SMALL_WORK), tiled serial, and
    // large enough to engage the pool on multi-core hosts. The same
    // seed-derived data must produce identical bits everywhere.
    for (m, k, n) in [(3, 5, 4), (64, 96, 48), (160, 128, 144)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = ft_tensor::uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = ft_tensor::uniform(&mut rng, &[k, n], -1.0, 1.0);
        let naive = reference_gemm(&a, &b);
        assert_eq!(a.matmul(&b).unwrap().data(), naive.data(), "{m}x{k}x{n}");
        assert_eq!(
            a.transpose().unwrap().t_matmul(&b).unwrap().data(),
            naive.data()
        );
        assert_eq!(
            a.matmul_t(&b.transpose().unwrap()).unwrap().data(),
            naive.data()
        );
    }
}

use rand::SeedableRng;
