//! Property-based tests for the tensor substrate.

use ft_tensor::Tensor;
use proptest::prelude::*;

fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).unwrap())
    })
}

fn matrix_pair_same_shape(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let v1 = proptest::collection::vec(-10.0f32..10.0, r * c);
        let v2 = proptest::collection::vec(-10.0f32..10.0, r * c);
        (v1, v2).prop_map(move |(a, b)| {
            (
                Tensor::from_vec(a, &[r, c]).unwrap(),
                Tensor::from_vec(b, &[r, c]).unwrap(),
            )
        })
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in matrix_pair_same_shape(8)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn sub_then_add_roundtrips((a, b) in matrix_pair_same_shape(8)) {
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix(8)) {
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn identity_matmul_is_noop(a in matrix(8)) {
        let n = a.cols().unwrap();
        let out = a.matmul(&Tensor::eye(n)).unwrap();
        for (x, y) in out.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn scale_is_linear(a in matrix(8), alpha in -5.0f32..5.0) {
        let direct = a.scale(alpha);
        let via_add = a.scale(alpha / 2.0).add(&a.scale(alpha / 2.0)).unwrap();
        for (x, y) in direct.data().iter().zip(via_add.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn norm_is_nonnegative_and_scales(a in matrix(8), alpha in 0.0f32..4.0) {
        prop_assert!(a.norm() >= 0.0);
        let scaled = a.scale(alpha).norm();
        prop_assert!((scaled - alpha * a.norm()).abs() < 1e-2 * (1.0 + a.norm()));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix(6),
        (b, c) in matrix_pair_same_shape(6),
    ) {
        // Align inner dims: use b/c transposed so a(r×c) @ bT(c×r) works.
        let bt = b.transpose().unwrap();
        let ct = c.transpose().unwrap();
        if a.cols().unwrap() == bt.rows().unwrap() {
            let lhs = a.matmul(&bt.add(&ct).unwrap()).unwrap();
            let rhs = a.matmul(&bt).unwrap().add(&a.matmul(&ct).unwrap()).unwrap();
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn sum_rows_matches_manual(a in matrix(8)) {
        let s = a.sum_rows().unwrap();
        let cols = a.cols().unwrap();
        for c in 0..cols {
            let manual: f32 = (0..a.rows().unwrap()).map(|r| a.at(r, c)).sum();
            prop_assert!((s.data()[c] - manual).abs() < 1e-3);
        }
    }

    #[test]
    fn argmax_rows_points_at_max(a in matrix(8)) {
        let idx = a.argmax_rows().unwrap();
        for (r, &i) in idx.iter().enumerate() {
            let row = a.row(r).unwrap();
            for &v in &row {
                prop_assert!(row[i] >= v);
            }
        }
    }
}
