//! Multi-worker tests for the budgeted pool dispatch.
//!
//! This file is its own test binary, so it can pin the pool size with
//! `FT_TENSOR_THREADS` *before* the pool is first touched — the in-crate
//! unit tests run with whatever the host offers (possibly a single
//! core), which would leave the budget path untested on small CI
//! runners.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

use ft_tensor::pool::{max_parallelism, parallel_for, parallel_for_budgeted};

/// Forces a 7-worker pool (8 threads of parallelism) regardless of the
/// host's core count. Must run before any other pool use in this
/// process; every test funnels through it.
fn pinned_pool() {
    static PIN: Once = Once::new();
    PIN.call_once(|| {
        std::env::set_var("FT_TENSOR_THREADS", "8");
        assert_eq!(max_parallelism(), 8);
    });
}

#[test]
fn budget_caps_concurrency_with_real_workers() {
    pinned_pool();
    for budget in [1usize, 2, 3] {
        let running = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        parallel_for_budgeted(48, budget, &|_| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            running.fetch_sub(1, Ordering::SeqCst);
        });
        let peak = peak.load(Ordering::SeqCst);
        assert!(
            peak <= budget as u64,
            "budget {budget} exceeded: peak {peak}"
        );
        assert!(peak >= 1);
    }
}

#[test]
fn unbudgeted_dispatch_uses_multiple_threads() {
    pinned_pool();
    let running = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    parallel_for(64, &|_| {
        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_micros(500));
        running.fetch_sub(1, Ordering::SeqCst);
    });
    assert!(
        peak.load(Ordering::SeqCst) > 1,
        "a 7-worker pool should overlap at least two tasks"
    );
}

#[test]
fn budgeted_results_match_serial_reference() {
    pinned_pool();
    let n = 257usize;
    let reference: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
    for budget in [1usize, 3, usize::MAX] {
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_budgeted(n, budget, &|i| {
            out[i].store((i as u64).wrapping_mul(0x9E37), Ordering::Relaxed);
        });
        let got: Vec<u64> = out.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        assert_eq!(got, reference, "budget {budget}");
    }
}

#[test]
fn budgeted_task_panic_propagates_and_pool_survives() {
    pinned_pool();
    let result = std::panic::catch_unwind(|| {
        parallel_for_budgeted(16, 2, &|i| {
            assert!(i != 3, "task 3 died");
        });
    });
    assert!(result.is_err());
    let n = AtomicU64::new(0);
    parallel_for_budgeted(16, 2, &|_| {
        n.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(n.load(Ordering::Relaxed), 16);
}
