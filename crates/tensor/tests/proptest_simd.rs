//! Property tests pinning the SIMD kernel tiers to the portable
//! fallback at 0 ULP.
//!
//! [`ft_tensor::simd`] promises that the AVX2 tier performs exactly
//! the portable loops' arithmetic — same IEEE-754 ops, same operands,
//! same per-element order, eight lanes at a time — so every
//! comparison against [`Kernel::Portable`] here is on raw `f32` bits,
//! not an epsilon band: GEMM across remainder tiles (`m % MR ≠ 0`,
//! `n % NR ≠ 0`, `k` below and above one k-block), every fused
//! element-wise kernel (including NaN/signed-zero edges through
//! Yogi's `signum`), the int8 dequant kernels, and a sweep of
//! autotune `(mc, kc)` choices. The opt-in FMA tier contracts
//! mul+add in the GEMM micro-kernel, so it is checked against a
//! relative band instead — and excluded from every golden digest.
//!
//! All tests serialize on one mutex: `simd::force` / `tune::force`
//! are process-global hooks.

use ft_tensor::simd::{self, Kernel};
use ft_tensor::{fused, tune, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed; the hooks are
    // still safe to use.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the kernel tier forced to `k`, restoring
/// auto-detection after.
fn under<T>(k: Kernel, f: impl FnOnce() -> T) -> T {
    simd::force(Some(k));
    let out = f();
    simd::force(None);
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Asserts every available tier reproduces the portable run exactly
/// (FMA too: `f` must not route through the GEMM micro-kernel).
fn assert_all_tiers_bit_equal(f: impl Fn() -> Vec<f32>, what: &str) {
    let reference = under(Kernel::Portable, &f);
    for k in simd::available() {
        let got = under(k, &f);
        assert_eq!(
            bits(&got),
            bits(&reference),
            "{what}: {:?} diverged from portable",
            k
        );
    }
}

fn seeded_tensor(dims: &[usize], seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ft_tensor::uniform(&mut rng, dims, -2.0, 2.0)
}

fn seeded_vec(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

// ---------------------------------------------------------------- GEMM

/// AVX2 GEMM must be bit-identical to portable; the FMA tier stays
/// within a relative band (one rounding fewer per multiply-add).
fn check_gemm_shape(m: usize, k: usize, n: usize) {
    let a = seeded_tensor(&[m, k], (m * 31 + k) as u64);
    let b = seeded_tensor(&[k, n], (n * 17 + k) as u64);
    let run = || a.matmul(&b).unwrap().data().to_vec();
    let reference = under(Kernel::Portable, run);
    for kern in simd::available() {
        let got = under(kern, run);
        match kern {
            Kernel::Avx2Fma => {
                for (i, (&x, &y)) in got.iter().zip(&reference).enumerate() {
                    let tol = 1e-4f32.max(y.abs() * 1e-4);
                    assert!((x - y).abs() <= tol, "fma {m}x{k}x{n} elem {i}: {x} vs {y}");
                }
            }
            _ => assert_eq!(
                bits(&got),
                bits(&reference),
                "{:?} {m}x{k}x{n} diverged from portable",
                kern
            ),
        }
    }
}

proptest! {
    // Shapes deliberately straddle SMALL_WORK and land on every
    // remainder-tile combination (m % 4, n % 8, k vs one k-block).
    #[test]
    fn gemm_tiers_agree_on_arbitrary_shapes(
        m in 1usize..=37,
        k in 1usize..=260,
        n in 1usize..=41,
    ) {
        let _guard = lock();
        check_gemm_shape(m, k, n);
    }

    #[test]
    fn t_matmul_and_matmul_t_tiers_agree(
        m in 1usize..=21,
        k in 1usize..=150,
        n in 1usize..=21,
    ) {
        let _guard = lock();
        let a = seeded_tensor(&[m, k], 5);
        let b = seeded_tensor(&[k, n], 6);
        let at = a.transpose().unwrap();
        let bt = b.transpose().unwrap();
        let run_t = || at.t_matmul(&b).unwrap().data().to_vec();
        let run_bt = || a.matmul_t(&bt).unwrap().data().to_vec();
        let (rt, rbt) = under(Kernel::Portable, || (run_t(), run_bt()));
        if simd::supported(Kernel::Avx2) {
            let (gt, gbt) = under(Kernel::Avx2, || (run_t(), run_bt()));
            prop_assert_eq!(bits(&gt), bits(&rt));
            prop_assert_eq!(bits(&gbt), bits(&rbt));
        }
    }
}

/// Hand-picked shapes crossing every dispatch path: small loop-nest,
/// tiled-serial, row-split parallel, column-split (short-and-wide),
/// plus maximal remainder tiles and k both under and over a k-block.
#[test]
fn gemm_tiers_agree_on_dispatch_edge_shapes() {
    let _guard = lock();
    for (m, k, n) in [
        (1, 1, 1),
        (3, 7, 5),       // small path
        (37, 130, 29),   // tiled, m%4=1, n%8=5, k crosses 128
        (21, 500, 19),   // k spans multiple k-blocks
        (33, 33, 33),    // just over SMALL_WORK
        (128, 128, 128), // row-split parallel threshold
        (4, 600, 600),   // column-split short-and-wide
        (160, 96, 144),  // multi-panel row split
        (5, 513, 9),     // k % KC_MAX ≠ 0 at the tune ceiling
    ] {
        check_gemm_shape(m, k, n);
    }
}

/// Any autotune `(mc, kc)` choice must produce bit-identical results
/// under every kernel tier: blocking changes scheduling, never the
/// per-element accumulation order. This is the digest-neutrality
/// argument for a host-varying tune, verified.
#[test]
fn tile_size_sweep_is_bit_neutral() {
    let _guard = lock();
    let (m, k, n) = (45, 300, 37);
    let a = seeded_tensor(&[m, k], 11);
    let b = seeded_tensor(&[k, n], 12);
    let run = || a.matmul(&b).unwrap().data().to_vec();
    tune::force(None);
    let reference = under(Kernel::Portable, run);
    for (mc, kc) in [(32, 32), (64, 64), (128, 512), (4096, 480), (36, 136)] {
        tune::force(Some((mc, kc)));
        let portable = under(Kernel::Portable, run);
        assert_eq!(
            bits(&portable),
            bits(&reference),
            "portable mc={mc} kc={kc}"
        );
        if simd::supported(Kernel::Avx2) {
            let avx2 = under(Kernel::Avx2, run);
            assert_eq!(bits(&avx2), bits(&reference), "avx2 mc={mc} kc={kc}");
        }
    }
    tune::force(None);
}

// ------------------------------------------------------- fused kernels

proptest! {
    #[test]
    fn elementwise_tiers_agree(
        a in proptest::collection::vec(-100.0f32..100.0, 1..600),
        seed in 0u64..1000,
        alpha in -10.0f32..10.0,
    ) {
        let _guard = lock();
        let b = seeded_vec(a.len(), seed);
        for (name, f) in [
            ("add_assign", &(|| { let mut x = a.clone(); fused::add_assign(&mut x, &b); x }) as &dyn Fn() -> Vec<f32>),
            ("sub_assign", &|| { let mut x = a.clone(); fused::sub_assign(&mut x, &b); x }),
            ("mul_assign", &|| { let mut x = a.clone(); fused::mul_assign(&mut x, &b); x }),
            ("scale_assign", &|| { let mut x = a.clone(); fused::scale_assign(&mut x, alpha); x }),
            ("axpy", &|| { let mut x = a.clone(); fused::axpy(&mut x, alpha, &b); x }),
        ] {
            assert_all_tiers_bit_equal(f, name);
        }
    }

    #[test]
    fn sgd_and_prox_tiers_agree(
        n in 1usize..=600,
        seed in 0u64..1000,
        lr in 0.001f32..1.0,
        momentum in 0.0f32..0.99,
        wd in 0.0f32..0.1,
        mu in 0.0f32..2.0,
    ) {
        let _guard = lock();
        let p = seeded_vec(n, seed);
        let v = seeded_vec(n, seed + 1);
        let g = seeded_vec(n, seed + 2);
        let anchor = seeded_vec(n, seed + 3);
        assert_all_tiers_bit_equal(
            || {
                let (mut fp, mut fv) = (p.clone(), v.clone());
                fused::sgd_momentum_update(&mut fp, &mut fv, &g, lr, momentum, wd);
                fp.extend_from_slice(&fv);
                fp
            },
            "sgd_momentum_update",
        );
        assert_all_tiers_bit_equal(
            || {
                let (mut fp, mut fv) = (p.clone(), v.clone());
                fused::prox_sgd_momentum_update(
                    &mut fp, &mut fv, &g, &anchor, mu, lr, momentum, wd,
                );
                fp.extend_from_slice(&fv);
                fp
            },
            "prox_sgd_momentum_update",
        );
    }

    #[test]
    fn yogi_tiers_agree(
        n in 1usize..=600,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let p = seeded_vec(n, seed);
        let m = seeded_vec(n, seed + 1);
        let v: Vec<f32> = seeded_vec(n, seed + 2).iter().map(|x| x.abs()).collect();
        let d = seeded_vec(n, seed + 3);
        let (lr, b1, b2, eps) = (0.1f32, 0.9f32, 0.99f32, 1e-3f32);
        assert_all_tiers_bit_equal(
            || {
                let (mut fp, mut fm, mut fv) = (p.clone(), m.clone(), v.clone());
                fused::yogi_update(&mut fp, &mut fm, &mut fv, &d, lr, b1, b2, eps);
                fp.extend_from_slice(&fm);
                fp.extend_from_slice(&fv);
                fp
            },
            "yogi_update",
        );
    }
}

/// Yogi's vectorized `signum` must reproduce `f32::signum` bit for
/// bit on the edges: ±0 (sign-dependent ±1) and NaN (the canonical
/// `f32::NAN`), plus the NaN propagation through the rest of the
/// update.
#[test]
fn yogi_signum_edges_are_bit_identical() {
    let _guard = lock();
    // v − g² hits +0, −0, NaN, +∞-adjacent, and plain values.
    let p = vec![1.0f32; 8];
    let m = vec![0.5f32; 8];
    let v = vec![0.0f32, -0.0, f32::NAN, 4.0, 1e-20, 1e20, 0.25, 0.0];
    let d = vec![0.0f32, 0.0, 1.0, f32::NAN, 2.0, -3.0, 0.5, 1.0];
    let (lr, b1, b2, eps) = (0.1f32, 0.9f32, 0.99f32, 1e-3f32);
    assert_all_tiers_bit_equal(
        || {
            let (mut fp, mut fm, mut fv) = (p.clone(), m.clone(), v.clone());
            fused::yogi_update(&mut fp, &mut fm, &mut fv, &d, lr, b1, b2, eps);
            fp.extend_from_slice(&fm);
            fp.extend_from_slice(&fv);
            fp
        },
        "yogi signum edges",
    );
}

/// SIMD-width remainder handling: every length around the 8-lane
/// boundary, and sizes straddling the pool-parallel threshold, must
/// be invisible.
#[test]
fn lane_tails_and_parallel_threshold_are_invisible() {
    let _guard = lock();
    let mut sizes: Vec<usize> = (0..=17).collect();
    sizes.extend([
        fused::PAR_ELEMS - 1,
        fused::PAR_ELEMS,
        fused::PAR_ELEMS + 13,
    ]);
    for n in sizes {
        let a = seeded_vec(n, 21);
        let b = seeded_vec(n, 22);
        assert_all_tiers_bit_equal(
            || {
                let mut x = a.clone();
                fused::axpy(&mut x, 0.375, &b);
                x
            },
            &format!("axpy n={n}"),
        );
    }
}

// ------------------------------------------------------ int8 dequant

proptest! {
    #[test]
    fn dequant_tiers_agree(
        q in proptest::collection::vec(-127i8..=127, 1..600),
        scale in 0.0f32..0.5,
        alpha in -10.0f32..10.0,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let acc = seeded_vec(q.len(), seed);
        assert_all_tiers_bit_equal(
            || {
                let mut dst = vec![0.0f32; q.len()];
                fused::dequant_scale(&mut dst, &q, scale);
                dst
            },
            "dequant_scale",
        );
        assert_all_tiers_bit_equal(
            || {
                let mut x = acc.clone();
                fused::dequant_axpy(&mut x, alpha, &q, scale);
                x
            },
            "dequant_axpy",
        );
        // The fused fold must equal dequantize-then-axpy exactly, on
        // every tier.
        for k in simd::available() {
            let (fused_out, two_step) = under(k, || {
                let mut f = acc.clone();
                fused::dequant_axpy(&mut f, alpha, &q, scale);
                let mut dst = vec![0.0f32; q.len()];
                fused::dequant_scale(&mut dst, &q, scale);
                let mut t = acc.clone();
                fused::axpy(&mut t, alpha, &dst);
                (f, t)
            });
            prop_assert_eq!(bits(&fused_out), bits(&two_step));
        }
    }
}

/// This host must actually exercise a SIMD tier in CI: if the CPU has
/// AVX2 the tier list must include it regardless of `FT_TENSOR_SIMD`
/// (the env override narrows `active()`, never `available()`).
#[test]
fn available_reflects_hardware_not_env() {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        assert!(simd::available().contains(&Kernel::Avx2));
    }
    assert!(simd::available().contains(&Kernel::Portable));
}
