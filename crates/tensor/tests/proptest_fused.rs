//! Property tests pinning every fused/in-place kernel to its
//! out-of-place (or pre-fusion scalar-loop) counterpart at 0 ULP.
//!
//! The fused kernels promise bit-for-bit identical results: they
//! perform exactly the arithmetic of the code they replaced, in the
//! same per-element order, merely without temporaries. Every
//! comparison here is on raw `f32` bits (`assert_eq` on buffers),
//! not an epsilon band. Deterministic tests at the pool-parallel
//! threshold (`fused::PAR_ELEMS`) additionally pin that the parallel
//! partition is invisible, including the empty and length-1 edges.

use ft_tensor::{fused, Tensor};
use proptest::prelude::*;

fn pair_same_len(max: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..=max).prop_flat_map(|n| {
        (
            proptest::collection::vec(-100.0f32..100.0, n),
            proptest::collection::vec(-100.0f32..100.0, n),
        )
    })
}

fn tensor_of(v: Vec<f32>) -> Tensor {
    let n = v.len();
    Tensor::from_vec(v, &[n]).unwrap()
}

proptest! {
    #[test]
    fn add_assign_matches_add((a, b) in pair_same_len(64)) {
        let ta = tensor_of(a);
        let tb = tensor_of(b);
        let out = ta.add(&tb).unwrap();
        let mut ip = ta.clone();
        ip.add_assign(&tb).unwrap();
        prop_assert_eq!(ip.data(), out.data());
    }

    #[test]
    fn sub_assign_matches_sub((a, b) in pair_same_len(64)) {
        let ta = tensor_of(a);
        let tb = tensor_of(b);
        let out = ta.sub(&tb).unwrap();
        let mut ip = ta.clone();
        ip.sub_assign(&tb).unwrap();
        prop_assert_eq!(ip.data(), out.data());
    }

    #[test]
    fn mul_assign_matches_mul((a, b) in pair_same_len(64)) {
        let ta = tensor_of(a);
        let tb = tensor_of(b);
        let out = ta.mul(&tb).unwrap();
        let mut ip = ta.clone();
        ip.mul_assign(&tb).unwrap();
        prop_assert_eq!(ip.data(), out.data());
    }

    #[test]
    fn scale_mut_matches_scale(a in proptest::collection::vec(-100.0f32..100.0, 1..64),
                               alpha in -10.0f32..10.0) {
        let ta = tensor_of(a);
        let out = ta.scale(alpha);
        let mut ip = ta.clone();
        ip.scale_mut(alpha);
        prop_assert_eq!(ip.data(), out.data());
    }

    #[test]
    fn axpy_matches_scalar_reference((a, b) in pair_same_len(64), alpha in -10.0f32..10.0) {
        let mut expect = a.clone();
        for (x, &y) in expect.iter_mut().zip(&b) {
            *x += alpha * y;
        }
        let mut ta = tensor_of(a);
        ta.axpy(alpha, &tensor_of(b)).unwrap();
        prop_assert_eq!(ta.data(), &expect[..]);
    }

    /// The fused SGD kernel vs the pre-fusion scalar index loop
    /// (`for i in 0..p.len()` with per-element bounds checks), which
    /// is the exact code it replaced in `ft_nn::Sgd::step`.
    #[test]
    fn fused_sgd_matches_index_loop(
        (p, g) in pair_same_len(64),
        v in proptest::collection::vec(-10.0f32..10.0, 64),
        lr in 0.001f32..1.0,
        momentum in 0.0f32..0.99,
        wd in 0.0f32..0.1,
    ) {
        let n = p.len();
        let v = v[..n.min(v.len())].to_vec();
        let n = n.min(v.len());
        let (p, g) = (p[..n].to_vec(), g[..n].to_vec());
        let (mut rp, mut rv) = (p.clone(), v.clone());
        for i in 0..n {
            let grad = g[i] + wd * rp[i];
            let vel = momentum * rv[i] + grad;
            rv[i] = vel;
            rp[i] -= lr * vel;
        }
        let (mut fp, mut fv) = (p, v);
        fused::sgd_momentum_update(&mut fp, &mut fv, &g, lr, momentum, wd);
        prop_assert_eq!(fp, rp);
        prop_assert_eq!(fv, rv);
    }

    /// The fused FedProx kernel vs the pre-fusion materialize-then-step
    /// sequence: clone the gradient, add `mu * (p - anchor)`, then run
    /// the SGD index loop on the adjusted copy.
    #[test]
    fn fused_prox_matches_materialized_gradient(
        (p, g) in pair_same_len(48),
        (anchor, v) in pair_same_len(48),
        mu in 0.0f32..2.0,
        lr in 0.001f32..1.0,
    ) {
        let n = p.len().min(anchor.len());
        let (p, g) = (p[..n].to_vec(), g[..n].to_vec());
        let (anchor, v) = (anchor[..n].to_vec(), v[..n].to_vec());
        let (momentum, wd) = (0.9f32, 0.01f32);
        // Reference: out-of-place adjusted gradient, then SGD loop.
        let mut adjusted = g.clone();
        for i in 0..n {
            adjusted[i] += mu * (p[i] - anchor[i]);
        }
        let (mut rp, mut rv) = (p.clone(), v.clone());
        for i in 0..n {
            let grad = adjusted[i] + wd * rp[i];
            let vel = momentum * rv[i] + grad;
            rv[i] = vel;
            rp[i] -= lr * vel;
        }
        let (mut fp, mut fv) = (p, v);
        fused::prox_sgd_momentum_update(&mut fp, &mut fv, &g, &anchor, mu, lr, momentum, wd);
        prop_assert_eq!(fp, rp);
        prop_assert_eq!(fv, rv);
    }

    /// The fused Yogi kernel vs the pre-fusion scalar index loop from
    /// `ft_nn::Yogi::step`.
    #[test]
    fn fused_yogi_matches_index_loop(
        (p, d) in pair_same_len(48),
        (m, v) in pair_same_len(48),
    ) {
        let n = p.len().min(m.len());
        let (p, d) = (p[..n].to_vec(), d[..n].to_vec());
        let m = m[..n].to_vec();
        // Yogi's v is a running second moment: keep it non-negative.
        let v: Vec<f32> = v[..n].iter().map(|x| x.abs()).collect();
        let (lr, b1, b2, eps) = (0.1f32, 0.9f32, 0.99f32, 1e-3f32);
        let (mut rp, mut rm, mut rv) = (p.clone(), m.clone(), v.clone());
        for i in 0..n {
            let g = d[i];
            let mi = b1 * rm[i] + (1.0 - b1) * g;
            let g2 = g * g;
            let vi = rv[i] - (1.0 - b2) * g2 * (rv[i] - g2).signum();
            rm[i] = mi;
            rv[i] = vi;
            rp[i] += lr * mi / (vi.sqrt() + eps);
        }
        let (mut fp, mut fm, mut fv) = (p, m, v);
        fused::yogi_update(&mut fp, &mut fm, &mut fv, &d, lr, b1, b2, eps);
        prop_assert_eq!(fp, rp);
        prop_assert_eq!(fm, rm);
        prop_assert_eq!(fv, rv);
    }
}

/// Deterministic pseudo-random buffer (seeded, allocation trivial).
fn seeded(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

/// Sizes straddling the pool-parallel threshold (plus the empty and
/// length-1 edges) must be bit-identical to a serial scalar loop: the
/// parallel partition may change *where* an element is computed but
/// never its value.
#[test]
fn threshold_straddling_sizes_match_serial_reference() {
    for n in [
        0,
        1,
        fused::PAR_ELEMS - 1,
        fused::PAR_ELEMS,
        fused::PAR_ELEMS + 13,
    ] {
        let a = seeded(n, 1);
        let b = seeded(n, 2);

        let mut expect = a.clone();
        for (x, &y) in expect.iter_mut().zip(&b) {
            *x += y;
        }
        let mut got = a.clone();
        fused::add_assign(&mut got, &b);
        assert_eq!(got, expect, "add_assign n={n}");

        let mut expect = a.clone();
        for (x, &y) in expect.iter_mut().zip(&b) {
            *x += 0.25 * y;
        }
        let mut got = a.clone();
        fused::axpy(&mut got, 0.25, &b);
        assert_eq!(got, expect, "axpy n={n}");

        let v0 = seeded(n, 3);
        let (lr, mom, wd) = (0.05f32, 0.9f32, 1e-4f32);
        let (mut rp, mut rv) = (a.clone(), v0.clone());
        for i in 0..n {
            let grad = b[i] + wd * rp[i];
            let vel = mom * rv[i] + grad;
            rv[i] = vel;
            rp[i] -= lr * vel;
        }
        let (mut fp, mut fv) = (a.clone(), v0);
        fused::sgd_momentum_update(&mut fp, &mut fv, &b, lr, mom, wd);
        assert_eq!(fp, rp, "sgd p n={n}");
        assert_eq!(fv, rv, "sgd v n={n}");
    }
}

/// In-place tensor ops on empty and length-1 tensors agree with the
/// out-of-place forms (degenerate shapes must not be special-cased
/// into divergence).
#[test]
fn empty_and_singleton_tensors_agree() {
    for dims in [&[0usize][..], &[1][..]] {
        let a = Tensor::full(dims, 3.5);
        let b = Tensor::full(dims, -1.25);
        let mut ip = a.clone();
        ip.add_assign(&b).unwrap();
        assert_eq!(ip, a.add(&b).unwrap());
        let mut ip = a.clone();
        ip.sub_assign(&b).unwrap();
        assert_eq!(ip, a.sub(&b).unwrap());
        let mut ip = a.clone();
        ip.mul_assign(&b).unwrap();
        assert_eq!(ip, a.mul(&b).unwrap());
        let mut ip = a.clone();
        ip.scale_mut(0.5);
        assert_eq!(ip, a.scale(0.5));
    }
}
