//! Per-worker, size-classed scratch buffers — the workspace memory
//! layer behind the zero-allocation steady-state train step.
//!
//! Every transient `f32` buffer in the workspace (tensor data, GEMM
//! pack panels, im2col matrices, attention projection workspaces,
//! loss/eval temporaries) is checked out of a thread-local pool with
//! [`take`] / [`take_zeroed`] and returned on drop — either through
//! the [`ScratchVec`] guard or through `Tensor`'s `Drop` impl, which
//! feeds its buffer back via [`recycle`]. In the warm steady state of
//! a training loop every buffer size repeats each step, so after the
//! first step the pool serves every checkout from its free lists and
//! the underlying allocator is never called again (pinned by the
//! `alloc_steady_state` regression test in `ft_fedsim`).
//!
//! # Ownership and determinism
//!
//! Pools are strictly per-thread (`thread_local!`), so checkout and
//! return never synchronize, never contend, and never move buffers
//! between threads while in use: a buffer checked out by a pool
//! worker lives on that worker's stack until it is dropped, exactly
//! like a plain `Vec` would. Reuse changes *where* a buffer's memory
//! comes from, never its contents as observed by callers: [`take`]
//! hands out initialized buffers of unspecified contents (stale
//! values or zeros — never uninitialized memory) for code that fully
//! overwrites them, and [`take_zeroed`] zero-fills the requested
//! length for accumulation buffers, which is byte-identical to
//! `vec![0.0; len]`. All arithmetic performed *in* the buffers is
//! untouched, so the 0-ULP determinism contract of the kernels is
//! preserved by construction.
//!
//! # Bounding
//!
//! Buffers are binned by power-of-two capacity class. Each class
//! retains a bounded number of free buffers and a bounded byte total
//! (`MAX_PER_CLASS` / `MAX_CLASS_BYTES`); anything beyond that (and
//! any buffer larger than `MAX_POOLED_BYTES`) is released to the real
//! allocator, so a transient spike cannot pin memory forever.
//!
//! # Disabling
//!
//! [`set_enabled`] turns the pool into a pass-through (fresh
//! allocation on checkout, real free on return). The train-step
//! benchmark uses this to measure the allocator's share of step time;
//! it is not meant for production use.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Smallest pooled class, in elements (smaller requests round up).
const MIN_CLASS_ELEMS: usize = 64;
/// Buffers above this many bytes are never pooled.
const MAX_POOLED_BYTES: usize = 64 << 20;
/// Retained free buffers per class.
const MAX_PER_CLASS: usize = 16;
/// Retained free bytes per class (caps the large classes harder).
const MAX_CLASS_BYTES: usize = 64 << 20;

/// Global pass-through switch (true = pooling active).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables pooling process-wide. Intended for the
/// train-step benchmark, which times the hot path with and without
/// buffer reuse in one process. Safe at any time: a buffer checked
/// out under one mode and returned under the other is simply freed
/// or cached according to the mode at return time.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether pooling is currently active.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One thread's free lists, indexed by power-of-two class.
struct ThreadPool {
    /// `classes[i]` holds buffers with capacity in
    /// `[MIN_CLASS_ELEMS << i, MIN_CLASS_ELEMS << (i + 1))`.
    classes: Vec<Vec<Vec<f32>>>,
    /// Reusable `usize` buffers (batch index scratch).
    index_bufs: Vec<Vec<usize>>,
}

impl ThreadPool {
    const fn new() -> Self {
        ThreadPool {
            classes: Vec::new(),
            index_bufs: Vec::new(),
        }
    }
}

thread_local! {
    static POOL: RefCell<ThreadPool> = const { RefCell::new(ThreadPool::new()) };
}

/// Class index for a request of `len` elements.
fn class_of(len: usize) -> usize {
    let rounded = len.max(MIN_CLASS_ELEMS).next_power_of_two();
    (rounded / MIN_CLASS_ELEMS).trailing_zeros() as usize
}

/// Capacity allocated for class `class`.
fn class_capacity(class: usize) -> usize {
    MIN_CLASS_ELEMS << class
}

/// Checks a buffer of exactly `len` elements out of the calling
/// thread's pool, with **unspecified contents** (stale values from a
/// previous user, or zeros). Use only where every element is written
/// before being read; use [`take_zeroed`] for accumulation buffers.
///
/// Buffers keep their initialized length through the pool, so the
/// warm path is a plain `truncate` — no clearing pass, no
/// uninitialized memory (`Vec::set_len` over fresh capacity would be
/// library UB even for `f32`). Growing past a recycled buffer's
/// initialized prefix, and the cold fresh-allocation path, zero-fill
/// the gap; in the steady state sizes repeat, so neither occurs.
pub fn take(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    if is_enabled() {
        let reused = POOL.with(|p| {
            let mut p = p.borrow_mut();
            let class = class_of(len);
            p.classes.get_mut(class).and_then(Vec::pop)
        });
        if let Some(mut v) = reused {
            debug_assert!(v.capacity() >= len);
            if v.len() >= len {
                v.truncate(len);
            } else {
                // Within capacity by the class invariant: fills only
                // the `v.len()..len` gap, never reallocates.
                v.resize(len, 0.0);
            }
            return v;
        }
    }
    let mut v = Vec::with_capacity(class_capacity(class_of(len)));
    v.resize(len, 0.0);
    v
}

/// [`take`], but with the `len` prefix zero-filled — byte-identical
/// to `vec![0.0; len]` as far as the caller can observe.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut v = take(len);
    v.fill(0.0);
    v
}

/// Returns a buffer to the calling thread's pool (or frees it when
/// pooling is disabled, the buffer is empty, oversized, or its class
/// is full). Accepts any `Vec<f32>`, not just pool-born ones: a
/// deserialized tensor's buffer enters the pool on first drop.
pub fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap < MIN_CLASS_ELEMS || cap * 4 > MAX_POOLED_BYTES || !is_enabled() {
        return; // dropped
    }
    // Classify by the largest class the capacity fully covers, so a
    // future `take` from that class always fits.
    let class = class_of(cap);
    let class = if class_capacity(class) > cap {
        match class.checked_sub(1) {
            Some(c) => c,
            None => return,
        }
    } else {
        class
    };
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.classes.len() <= class {
            p.classes.resize_with(class + 1, Vec::new);
        }
        let list = &mut p.classes[class];
        let class_bytes = class_capacity(class) * 4;
        if list.len() < MAX_PER_CLASS && (list.len() + 1) * class_bytes <= MAX_CLASS_BYTES {
            list.push(v);
        }
    });
}

/// An RAII checkout: derefs to `[f32]` and returns its buffer to the
/// pool on drop. [`ScratchVec::into_vec`] hands the buffer off
/// instead (e.g. to become a `Tensor`'s storage, which recycles it
/// through its own `Drop`).
pub struct ScratchVec {
    v: Vec<f32>,
}

impl ScratchVec {
    /// Checks out `len` elements with unspecified contents.
    pub fn take(len: usize) -> Self {
        ScratchVec { v: take(len) }
    }

    /// Checks out `len` zero-filled elements.
    pub fn take_zeroed(len: usize) -> Self {
        ScratchVec {
            v: take_zeroed(len),
        }
    }

    /// Releases the underlying buffer to the caller (it will not be
    /// recycled by this guard).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.v)
    }
}

impl std::ops::Deref for ScratchVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.v
    }
}

impl std::ops::DerefMut for ScratchVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.v
    }
}

impl Drop for ScratchVec {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.v));
    }
}

/// Borrows a reusable `usize` buffer (cleared before `f` runs) from
/// the calling thread's pool — the batch-index scratch used by data
/// sampling. Reentrant calls get a fresh buffer.
pub fn with_index_buf<R>(f: impl FnOnce(&mut Vec<usize>) -> R) -> R {
    let mut buf = POOL
        .with(|p| p.borrow_mut().index_bufs.pop())
        .unwrap_or_default();
    buf.clear();
    let out = f(&mut buf);
    if is_enabled() {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.index_bufs.len() < 4 {
                p.index_bufs.push(buf);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_len_and_zeroing() {
        let v = take(100);
        assert_eq!(v.len(), 100);
        let z = take_zeroed(100);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_len_take_is_empty() {
        assert!(take(0).is_empty());
        assert!(take_zeroed(0).is_empty());
    }

    #[test]
    fn recycled_capacity_is_reused() {
        let mut v = take(1000);
        v[0] = 42.0;
        let ptr = v.as_ptr();
        recycle(v);
        // Same thread, same class: the very next checkout of a
        // same-class size reuses the buffer.
        let v2 = take(900);
        assert_eq!(v2.as_ptr(), ptr);
        assert_eq!(v2.len(), 900);
    }

    #[test]
    fn take_zeroed_clears_recycled_garbage() {
        let mut v = take(256);
        v.fill(7.0);
        recycle(v);
        let z = take_zeroed(256);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn class_retention_is_bounded() {
        // Recycling more than MAX_PER_CLASS buffers must not grow the
        // free list without bound; this is observational (no panic,
        // no leak under ASan-style reasoning) — just exercise it.
        for _ in 0..(MAX_PER_CLASS * 2) {
            recycle(take(128));
        }
        let v = take(128);
        assert_eq!(v.len(), 128);
    }

    #[test]
    fn foreign_buffers_are_accepted() {
        // A vec not born from the pool (odd capacity) still recycles:
        // it lands in the class its capacity fully covers.
        let v = Vec::with_capacity(200);
        recycle(v);
        let out = take(128); // class 1 (cap 128) <= 200
        assert!(out.capacity() >= 128);
    }

    #[test]
    fn scratch_vec_guard_round_trips() {
        let mut g = ScratchVec::take_zeroed(300);
        g[0] = 1.0;
        let ptr = g.as_ptr();
        drop(g);
        let g2 = ScratchVec::take(300);
        assert_eq!(g2.as_ptr(), ptr);
    }

    #[test]
    fn index_buf_is_cleared_between_uses() {
        with_index_buf(|b| b.extend(0..10));
        with_index_buf(|b| assert!(b.is_empty()));
    }

    #[test]
    fn disabled_mode_is_pass_through() {
        set_enabled(false);
        let v = take(128);
        let ptr = v.as_ptr();
        recycle(v);
        let v2 = take(128);
        // With pooling off the second take is a fresh allocation —
        // it *may* coincidentally reuse the address via the system
        // allocator, so only assert behavior that must hold: correct
        // length and no panic.
        assert_eq!(v2.len(), 128);
        let _ = ptr;
        set_enabled(true);
    }
}
