use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is a thin wrapper over `Vec<usize>` that centralizes volume
/// computation and rank checks used throughout the workspace.
///
/// ```
/// use ft_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements a tensor of this shape holds.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the size of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                axis,
                index: axis,
                len: self.0.len(),
            })
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Checks that this shape has exactly `rank` axes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] otherwise.
    pub fn expect_rank(&self, rank: usize) -> Result<(), TensorError> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_shape_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn dim_out_of_bounds_errors() {
        let s = Shape::new(&[2]);
        assert!(s.dim(1).is_err());
        assert_eq!(s.dim(0).unwrap(), 2);
    }

    #[test]
    fn expect_rank_checks() {
        let s = Shape::new(&[2, 2]);
        assert!(s.expect_rank(2).is_ok());
        assert!(s.expect_rank(3).is_err());
    }
}
