use serde::{DeError, Deserialize, Serialize, Value};

use crate::TensorError;

/// Maximum tensor rank the inline shape representation supports.
pub const MAX_RANK: usize = 4;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// Dimensions live in a fixed inline array (up to [`MAX_RANK`] axes),
/// so creating, cloning, and dropping a `Shape` never touches the
/// heap — one of the pieces of the zero-allocation steady-state train
/// step. Unused trailing slots are kept at zero so the derived
/// equality and hashing see only the live prefix.
///
/// ```
/// use ft_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_RANK`] dimensions are supplied; the
    /// workspace only ever builds rank-0..=2 tensors.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds the inline maximum of {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// Returns the dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Returns the number of axes.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements a tensor of this shape holds.
    pub fn volume(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns the size of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims()
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                axis,
                index: axis,
                len: self.rank(),
            })
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let dims = self.dims();
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        strides
    }

    /// Checks that this shape has exactly `rank` axes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] otherwise.
    pub fn expect_rank(&self, rank: usize) -> Result<(), TensorError> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            })
        }
    }
}

// Shape used to be a newtype over `Vec<usize>`, whose derived serde
// form is a transparent JSON array; the manual impls preserve that
// wire format for the inline representation.
impl Serialize for Shape {
    fn to_value(&self) -> Value {
        Value::Array(
            self.dims()
                .iter()
                .map(|&d| Value::Number(d as f64))
                .collect(),
        )
    }
}

impl Deserialize for Shape {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let dims = Vec::<usize>::from_value(value)?;
        if dims.len() > MAX_RANK {
            return Err(DeError::new(format!(
                "shape rank {} exceeds the inline maximum of {MAX_RANK}",
                dims.len()
            )));
        }
        Ok(Shape::new(&dims))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_shape_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn dim_out_of_bounds_errors() {
        let s = Shape::new(&[2]);
        assert!(s.dim(1).is_err());
        assert_eq!(s.dim(0).unwrap(), 2);
    }

    #[test]
    fn expect_rank_checks() {
        let s = Shape::new(&[2, 2]);
        assert!(s.expect_rank(2).is_ok());
        assert!(s.expect_rank(3).is_err());
    }

    #[test]
    fn equality_ignores_trailing_slots() {
        // Same dims through different construction paths must agree.
        assert_eq!(Shape::new(&[3, 4]), Shape::from(vec![3, 4]));
        assert_ne!(Shape::new(&[3, 4]), Shape::new(&[3, 4, 1]));
    }

    #[test]
    fn serde_round_trips_as_plain_array() {
        let s = Shape::new(&[2, 5]);
        let v = s.to_value();
        assert_eq!(v, Vec::<usize>::from([2, 5]).to_value());
        assert_eq!(Shape::from_value(&v).unwrap(), s);
    }
}
