//! Runtime-dispatched SIMD micro-kernels for the GEMM core, the fused
//! element-wise kernels, and the int8 dequantization path.
//!
//! # Dispatch
//!
//! The kernel tier is decided once per process by [`active`]:
//!
//! 1. `FT_TENSOR_SIMD=0` forces the portable fallback (the plain Rust
//!    loops, exactly the pre-SIMD code path).
//! 2. `FT_TENSOR_SIMD=fma` opts into the AVX2+FMA GEMM micro-kernel.
//!    FMA contracts `mul`+`add` into one rounding, so its results are
//!    **not** bit-identical to the portable path; it is excluded from
//!    every golden-digest check and exists purely as an opt-in
//!    throughput tier. Element-wise kernels never use FMA.
//! 3. Otherwise, `is_x86_feature_detected!("avx2")` picks [`Kernel::Avx2`]
//!    on capable x86-64 hosts and [`Kernel::Portable`] everywhere else.
//!
//! # Why AVX2 keeps results bit-identical
//!
//! Every [`Kernel::Avx2`] kernel performs exactly the scalar kernels'
//! arithmetic — the same IEEE-754 single-precision `mul`/`add`/`sub`/
//! `div`/`sqrt` operations, on the same operands, in the same
//! per-element order — merely eight lanes at a time. Vectorizing runs
//! across *independent* output elements (the `NR` column dimension in
//! GEMM, disjoint indices element-wise), so no accumulation order
//! changes and no reduction is split: each output element keeps its
//! single accumulator and ascending-`k` order. `x86` vector `mulps`/
//! `addps` lanes round exactly like their scalar `mulss`/`addss`
//! counterparts, so the results are 0 ULP from the portable fallback —
//! pinned by `crates/tensor/tests/proptest_simd.rs` and by the CI
//! scenario legs that replay every golden digest under
//! `FT_TENSOR_SIMD=0`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A micro-kernel implementation tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Plain Rust loops — the reference semantics on every platform.
    Portable,
    /// Explicit AVX2 intrinsics, bit-identical to [`Kernel::Portable`].
    Avx2,
    /// AVX2 with FMA contraction in the GEMM micro-kernel. Opt-in via
    /// `FT_TENSOR_SIMD=fma`; **not** bit-identical (one rounding per
    /// multiply-add instead of two), so it is excluded from golden
    /// checks. Element-wise kernels fall back to the AVX2 forms.
    Avx2Fma,
}

impl Kernel {
    /// Stable lowercase name used in bench emitters and logs.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Portable => "portable",
            Kernel::Avx2 => "avx2",
            Kernel::Avx2Fma => "avx2+fma",
        }
    }
}

/// Pure decision function behind [`active`], separated so the env/CPU
/// matrix is unit-testable without touching process state.
fn decide(env: Option<&str>, has_avx2: bool, has_fma: bool) -> Kernel {
    match env.map(str::trim) {
        Some("0") | Some("off") | Some("portable") => Kernel::Portable,
        Some("fma") if has_avx2 && has_fma => Kernel::Avx2Fma,
        // Any other value (including an unsatisfiable `fma` request)
        // falls through to best-available auto-detection.
        _ => {
            if has_avx2 {
                Kernel::Avx2
            } else {
                Kernel::Portable
            }
        }
    }
}

/// Whether this host's CPU can execute `k` at all (independent of the
/// `FT_TENSOR_SIMD` setting).
pub fn supported(k: Kernel) -> bool {
    match k {
        Kernel::Portable => true,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2Fma => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// Every kernel tier this host can execute, portable first. Hardware
/// capability only — `FT_TENSOR_SIMD` does not narrow this list, so
/// equivalence tests can always compare the tiers side by side.
pub fn available() -> Vec<Kernel> {
    [Kernel::Portable, Kernel::Avx2, Kernel::Avx2Fma]
        .into_iter()
        .filter(|&k| supported(k))
        .collect()
}

/// The env- and CPU-derived kernel choice, computed once per process.
fn detected() -> Kernel {
    static DETECTED: OnceLock<Kernel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let env = std::env::var("FT_TENSOR_SIMD").ok();
        #[cfg(target_arch = "x86_64")]
        let (avx2, fma) = (
            std::arch::is_x86_feature_detected!("avx2"),
            std::arch::is_x86_feature_detected!("fma"),
        );
        #[cfg(not(target_arch = "x86_64"))]
        let (avx2, fma) = (false, false);
        decide(env.as_deref(), avx2, fma)
    })
}

/// Test/bench override: 0 = none, otherwise `Kernel as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Overrides the kernel tier for subsequent calls (`None` restores
/// the `FT_TENSOR_SIMD`/CPU auto-detection). A bench/test hook in the
/// spirit of [`crate::scratch::set_enabled`]: production code never
/// calls it, and callers must not flip it while kernels are running
/// on other threads.
///
/// # Panics
///
/// Panics when `k` is a tier this host's CPU cannot execute
/// ([`supported`] is false) — forcing it would be undefined behavior.
pub fn force(k: Option<Kernel>) {
    let v = match k {
        None => 0,
        Some(k) => {
            assert!(
                supported(k),
                "cannot force {:?}: not supported by this host's CPU",
                k
            );
            k as u8 + 1
        }
    };
    FORCED.store(v, Ordering::SeqCst);
}

/// The kernel tier every dispatch site uses for this call.
pub fn active() -> Kernel {
    match FORCED.load(Ordering::SeqCst) {
        1 => Kernel::Portable,
        2 => Kernel::Avx2,
        3 => Kernel::Avx2Fma,
        _ => detected(),
    }
}

/// The explicit AVX2/FMA kernels. Each function is `unsafe` solely
/// because of the `target_feature` contract: the caller must have
/// verified AVX2 (and FMA where noted) support, which every dispatch
/// site does by construction ([`active`] only returns a tier
/// [`supported`] reports true for).
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use std::arch::x86_64::*;

    use crate::matmul::{MR, NR};

    /// AVX2 GEMM register tile: `acc[r][j] += Σ_p apack[p·MR+r] ·
    /// bpack[p·NR+j]`, ascending `p`, one `mul` + one `add` per term —
    /// the portable micro-kernel's arithmetic exactly, eight `j` lanes
    /// per instruction (`NR` = 8 = one `__m256`).
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support, and `apack`/`bpack`
    /// must hold at least `kc * MR` / `kc * NR` elements.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_micro_avx2(
        apack: &[f32],
        bpack: &[f32],
        acc: &mut [[f32; NR]; MR],
        kc: usize,
    ) {
        debug_assert!(apack.len() >= kc * MR && bpack.len() >= kc * NR);
        let (ap, bp) = (apack.as_ptr(), bpack.as_ptr());
        // SAFETY: each acc row is NR = 8 contiguous f32s.
        let mut v0 = unsafe { _mm256_loadu_ps(acc[0].as_ptr()) };
        // SAFETY: as above.
        let mut v1 = unsafe { _mm256_loadu_ps(acc[1].as_ptr()) };
        // SAFETY: as above.
        let mut v2 = unsafe { _mm256_loadu_ps(acc[2].as_ptr()) };
        // SAFETY: as above.
        let mut v3 = unsafe { _mm256_loadu_ps(acc[3].as_ptr()) };
        for p in 0..kc {
            // SAFETY: p < kc, so p·NR + NR ≤ kc·NR ≤ bpack.len().
            let b = unsafe { _mm256_loadu_ps(bp.add(p * NR)) };
            // SAFETY: p < kc, so p·MR + MR ≤ kc·MR ≤ apack.len().
            let (a0, a1, a2, a3) = unsafe {
                (
                    _mm256_set1_ps(*ap.add(p * MR)),
                    _mm256_set1_ps(*ap.add(p * MR + 1)),
                    _mm256_set1_ps(*ap.add(p * MR + 2)),
                    _mm256_set1_ps(*ap.add(p * MR + 3)),
                )
            };
            v0 = _mm256_add_ps(v0, _mm256_mul_ps(a0, b));
            v1 = _mm256_add_ps(v1, _mm256_mul_ps(a1, b));
            v2 = _mm256_add_ps(v2, _mm256_mul_ps(a2, b));
            v3 = _mm256_add_ps(v3, _mm256_mul_ps(a3, b));
        }
        // SAFETY: each acc row is NR = 8 contiguous f32s.
        unsafe {
            _mm256_storeu_ps(acc[0].as_mut_ptr(), v0);
            _mm256_storeu_ps(acc[1].as_mut_ptr(), v1);
            _mm256_storeu_ps(acc[2].as_mut_ptr(), v2);
            _mm256_storeu_ps(acc[3].as_mut_ptr(), v3);
        }
    }

    /// FMA variant of [`gemm_micro_avx2`]: one contracted rounding per
    /// multiply-add. Faster, but **not** bit-identical to the portable
    /// path — only reachable through the opt-in `FT_TENSOR_SIMD=fma`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 *and* FMA support, and
    /// `apack`/`bpack` must hold at least `kc * MR` / `kc * NR`
    /// elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_micro_fma(
        apack: &[f32],
        bpack: &[f32],
        acc: &mut [[f32; NR]; MR],
        kc: usize,
    ) {
        debug_assert!(apack.len() >= kc * MR && bpack.len() >= kc * NR);
        let (ap, bp) = (apack.as_ptr(), bpack.as_ptr());
        // SAFETY: each acc row is NR = 8 contiguous f32s.
        let mut v0 = unsafe { _mm256_loadu_ps(acc[0].as_ptr()) };
        // SAFETY: as above.
        let mut v1 = unsafe { _mm256_loadu_ps(acc[1].as_ptr()) };
        // SAFETY: as above.
        let mut v2 = unsafe { _mm256_loadu_ps(acc[2].as_ptr()) };
        // SAFETY: as above.
        let mut v3 = unsafe { _mm256_loadu_ps(acc[3].as_ptr()) };
        for p in 0..kc {
            // SAFETY: p < kc, so p·NR + NR ≤ kc·NR ≤ bpack.len().
            let b = unsafe { _mm256_loadu_ps(bp.add(p * NR)) };
            // SAFETY: p < kc, so p·MR + MR ≤ kc·MR ≤ apack.len().
            let (a0, a1, a2, a3) = unsafe {
                (
                    _mm256_set1_ps(*ap.add(p * MR)),
                    _mm256_set1_ps(*ap.add(p * MR + 1)),
                    _mm256_set1_ps(*ap.add(p * MR + 2)),
                    _mm256_set1_ps(*ap.add(p * MR + 3)),
                )
            };
            v0 = _mm256_fmadd_ps(a0, b, v0);
            v1 = _mm256_fmadd_ps(a1, b, v1);
            v2 = _mm256_fmadd_ps(a2, b, v2);
            v3 = _mm256_fmadd_ps(a3, b, v3);
        }
        // SAFETY: each acc row is NR = 8 contiguous f32s.
        unsafe {
            _mm256_storeu_ps(acc[0].as_mut_ptr(), v0);
            _mm256_storeu_ps(acc[1].as_mut_ptr(), v1);
            _mm256_storeu_ps(acc[2].as_mut_ptr(), v2);
            _mm256_storeu_ps(acc[3].as_mut_ptr(), v3);
        }
    }

    /// Width of one `__m256` in `f32` lanes.
    const LANES: usize = 8;

    /// `a[i] += b[i]`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_avx2(a: &mut [f32], b: &[f32]) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n, both slices are n long.
            unsafe {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                _mm256_storeu_ps(pa.add(i), _mm256_add_ps(va, vb));
            }
            i += LANES;
        }
        for (x, &y) in a[i..].iter_mut().zip(&b[i..]) {
            *x += y;
        }
    }

    /// `a[i] -= b[i]`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_assign_avx2(a: &mut [f32], b: &[f32]) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n, both slices are n long.
            unsafe {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                _mm256_storeu_ps(pa.add(i), _mm256_sub_ps(va, vb));
            }
            i += LANES;
        }
        for (x, &y) in a[i..].iter_mut().zip(&b[i..]) {
            *x -= y;
        }
    }

    /// `a[i] *= b[i]`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_assign_avx2(a: &mut [f32], b: &[f32]) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n, both slices are n long.
            unsafe {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                _mm256_storeu_ps(pa.add(i), _mm256_mul_ps(va, vb));
            }
            i += LANES;
        }
        for (x, &y) in a[i..].iter_mut().zip(&b[i..]) {
            *x *= y;
        }
    }

    /// `a[i] *= alpha`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_assign_avx2(a: &mut [f32], alpha: f32) {
        let n = a.len();
        let pa = a.as_mut_ptr();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n.
            unsafe {
                let v = _mm256_loadu_ps(pa.add(i));
                _mm256_storeu_ps(pa.add(i), _mm256_mul_ps(v, va));
            }
            i += LANES;
        }
        for x in &mut a[i..] {
            *x *= alpha;
        }
    }

    /// `a[i] += alpha * b[i]` (no FMA: `mul` then `add`, matching the
    /// portable kernel bit for bit).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(a: &mut [f32], alpha: f32, b: &[f32]) {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
        let valpha = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n, both slices are n long.
            unsafe {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                _mm256_storeu_ps(pa.add(i), _mm256_add_ps(va, _mm256_mul_ps(valpha, vb)));
            }
            i += LANES;
        }
        for (x, &y) in a[i..].iter_mut().zip(&b[i..]) {
            *x += alpha * y;
        }
    }

    /// Fused SGD-with-momentum update, the scalar kernel's arithmetic
    /// lane for lane: `grad = g + wd·p; v = mom·v + grad; p -= lr·v`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sgd_momentum_avx2(
        p: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        lr: f32,
        momentum: f32,
        weight_decay: f32,
    ) {
        debug_assert!(p.len() == v.len() && p.len() == g.len());
        let n = p.len();
        let (pp, pv, pg) = (p.as_mut_ptr(), v.as_mut_ptr(), g.as_ptr());
        let (vlr, vmom, vwd) = (
            _mm256_set1_ps(lr),
            _mm256_set1_ps(momentum),
            _mm256_set1_ps(weight_decay),
        );
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n; p/v/g are all n long.
            unsafe {
                let xp = _mm256_loadu_ps(pp.add(i));
                let xv = _mm256_loadu_ps(pv.add(i));
                let xg = _mm256_loadu_ps(pg.add(i));
                let grad = _mm256_add_ps(xg, _mm256_mul_ps(vwd, xp));
                let vel = _mm256_add_ps(_mm256_mul_ps(vmom, xv), grad);
                _mm256_storeu_ps(pv.add(i), vel);
                _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(xp, _mm256_mul_ps(vlr, vel)));
            }
            i += LANES;
        }
        for ((p, v), &g) in p[i..].iter_mut().zip(&mut v[i..]).zip(&g[i..]) {
            let grad = g + weight_decay * *p;
            let vel = momentum * *v + grad;
            *v = vel;
            *p -= lr * vel;
        }
    }

    /// Fused FedProx update: the SGD kernel with the proximal term
    /// `g + mu·(p − anchor)` computed from the pre-update `p`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn prox_sgd_momentum_avx2(
        p: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        anchor: &[f32],
        mu: f32,
        lr: f32,
        momentum: f32,
        weight_decay: f32,
    ) {
        debug_assert!(p.len() == v.len() && p.len() == g.len() && p.len() == anchor.len());
        let n = p.len();
        let (pp, pv, pg, pa) = (p.as_mut_ptr(), v.as_mut_ptr(), g.as_ptr(), anchor.as_ptr());
        let (vmu, vlr, vmom, vwd) = (
            _mm256_set1_ps(mu),
            _mm256_set1_ps(lr),
            _mm256_set1_ps(momentum),
            _mm256_set1_ps(weight_decay),
        );
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n; p/v/g/anchor are all n long.
            unsafe {
                let xp = _mm256_loadu_ps(pp.add(i));
                let xv = _mm256_loadu_ps(pv.add(i));
                let xg = _mm256_loadu_ps(pg.add(i));
                let xa = _mm256_loadu_ps(pa.add(i));
                let adjusted = _mm256_add_ps(xg, _mm256_mul_ps(vmu, _mm256_sub_ps(xp, xa)));
                let grad = _mm256_add_ps(adjusted, _mm256_mul_ps(vwd, xp));
                let vel = _mm256_add_ps(_mm256_mul_ps(vmom, xv), grad);
                _mm256_storeu_ps(pv.add(i), vel);
                _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(xp, _mm256_mul_ps(vlr, vel)));
            }
            i += LANES;
        }
        for (((p, v), &g), &a) in p[i..]
            .iter_mut()
            .zip(&mut v[i..])
            .zip(&g[i..])
            .zip(&anchor[i..])
        {
            let adjusted = g + mu * (*p - a);
            let grad = adjusted + weight_decay * *p;
            let vel = momentum * *v + grad;
            *v = vel;
            *p -= lr * vel;
        }
    }

    /// `signum` over a vector, matching `f32::signum` lane for lane:
    /// ±1 with the operand's sign bit for finite and infinite values
    /// (including ±0), the canonical `f32::NAN` for NaN lanes.
    #[target_feature(enable = "avx2")]
    fn signum_ps(x: __m256) -> __m256 {
        let signed_one = _mm256_or_ps(_mm256_set1_ps(1.0), _mm256_and_ps(x, _mm256_set1_ps(-0.0)));
        // Unordered-with-self picks out NaN lanes.
        let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
        _mm256_blendv_ps(signed_one, _mm256_set1_ps(f32::NAN), nan)
    }

    /// Fused Yogi update, the scalar kernel's arithmetic lane for
    /// lane (vector `sqrt`/`div` round identically to their scalar
    /// forms; `signum` is emulated exactly, see [`signum_ps`]).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn yogi_avx2(
        p: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        d: &[f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
    ) {
        debug_assert!(p.len() == m.len() && p.len() == v.len() && p.len() == d.len());
        let n = p.len();
        let (pp, pm, pv, pd) = (p.as_mut_ptr(), m.as_mut_ptr(), v.as_mut_ptr(), d.as_ptr());
        let (vlr, vb1, vb2c, vb1c, veps) = (
            _mm256_set1_ps(lr),
            _mm256_set1_ps(beta1),
            _mm256_set1_ps(1.0 - beta2),
            _mm256_set1_ps(1.0 - beta1),
            _mm256_set1_ps(eps),
        );
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n; p/m/v/d are all n long.
            unsafe {
                let xp = _mm256_loadu_ps(pp.add(i));
                let xm = _mm256_loadu_ps(pm.add(i));
                let xv = _mm256_loadu_ps(pv.add(i));
                let xg = _mm256_loadu_ps(pd.add(i));
                let mi = _mm256_add_ps(_mm256_mul_ps(vb1, xm), _mm256_mul_ps(vb1c, xg));
                let g2 = _mm256_mul_ps(xg, xg);
                let sign = signum_ps(_mm256_sub_ps(xv, g2));
                let vi = _mm256_sub_ps(xv, _mm256_mul_ps(_mm256_mul_ps(vb2c, g2), sign));
                _mm256_storeu_ps(pm.add(i), mi);
                _mm256_storeu_ps(pv.add(i), vi);
                let denom = _mm256_add_ps(_mm256_sqrt_ps(vi), veps);
                let step = _mm256_div_ps(_mm256_mul_ps(vlr, mi), denom);
                _mm256_storeu_ps(pp.add(i), _mm256_add_ps(xp, step));
            }
            i += LANES;
        }
        for (((p, m), v), &g) in p[i..]
            .iter_mut()
            .zip(&mut m[i..])
            .zip(&mut v[i..])
            .zip(&d[i..])
        {
            let mi = beta1 * *m + (1.0 - beta1) * g;
            let g2 = g * g;
            let vi = *v - (1.0 - beta2) * g2 * (*v - g2).signum();
            *m = mi;
            *v = vi;
            *p += lr * mi / (vi.sqrt() + eps);
        }
    }

    /// `dst[i] = q[i] as f32 * scale` — the int8 dequantization store
    /// (sign-extend, exact int→float convert, one multiply).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequant_scale_avx2(dst: &mut [f32], q: &[i8], scale: f32) {
        debug_assert_eq!(dst.len(), q.len());
        let n = dst.len();
        let (pd, pq) = (dst.as_mut_ptr(), q.as_ptr());
        let vscale = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n, so 8 bytes of q and 8 f32s of dst are
            // in bounds.
            unsafe {
                let qi = _mm_loadl_epi64(pq.add(i) as *const __m128i);
                let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                _mm256_storeu_ps(pd.add(i), _mm256_mul_ps(qf, vscale));
            }
            i += LANES;
        }
        for (x, &qv) in dst[i..].iter_mut().zip(&q[i..]) {
            *x = qv as f32 * scale;
        }
    }

    /// `acc[i] += alpha * (q[i] as f32 * scale)` — fused int8
    /// dequant-accumulate (dequantize then `axpy`, no intermediate
    /// buffer; `mul`/`mul`/`add`, no FMA).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequant_axpy_avx2(acc: &mut [f32], alpha: f32, q: &[i8], scale: f32) {
        debug_assert_eq!(acc.len(), q.len());
        let n = acc.len();
        let (pa, pq) = (acc.as_mut_ptr(), q.as_ptr());
        let (vscale, valpha) = (_mm256_set1_ps(scale), _mm256_set1_ps(alpha));
        let mut i = 0;
        while i + LANES <= n {
            // SAFETY: i + 8 ≤ n, so 8 bytes of q and 8 f32s of acc are
            // in bounds.
            unsafe {
                let qi = _mm_loadl_epi64(pq.add(i) as *const __m128i);
                let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                let t = _mm256_mul_ps(qf, vscale);
                let va = _mm256_loadu_ps(pa.add(i));
                _mm256_storeu_ps(pa.add(i), _mm256_add_ps(va, _mm256_mul_ps(valpha, t)));
            }
            i += LANES;
        }
        for (x, &qv) in acc[i..].iter_mut().zip(&q[i..]) {
            let t = qv as f32 * scale;
            *x += alpha * t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_honors_the_env_override() {
        assert_eq!(decide(Some("0"), true, true), Kernel::Portable);
        assert_eq!(decide(Some("off"), true, true), Kernel::Portable);
        assert_eq!(decide(Some("portable"), true, true), Kernel::Portable);
        assert_eq!(decide(Some(" 0 "), true, true), Kernel::Portable);
    }

    #[test]
    fn decide_auto_detects_from_cpu_features() {
        assert_eq!(decide(None, true, true), Kernel::Avx2);
        assert_eq!(decide(None, true, false), Kernel::Avx2);
        assert_eq!(decide(None, false, false), Kernel::Portable);
        assert_eq!(decide(Some("1"), true, false), Kernel::Avx2);
        assert_eq!(decide(Some("1"), false, false), Kernel::Portable);
    }

    #[test]
    fn decide_fma_is_opt_in_and_requires_hardware() {
        assert_eq!(decide(Some("fma"), true, true), Kernel::Avx2Fma);
        // Unsatisfiable fma request falls back to best available.
        assert_eq!(decide(Some("fma"), true, false), Kernel::Avx2);
        assert_eq!(decide(Some("fma"), false, false), Kernel::Portable);
        // fma is never chosen without the explicit opt-in.
        assert_eq!(decide(None, true, true), Kernel::Avx2);
    }

    #[test]
    fn available_starts_portable_and_only_lists_supported() {
        let tiers = available();
        assert_eq!(tiers[0], Kernel::Portable);
        for k in tiers {
            assert!(supported(k));
        }
    }

    #[test]
    fn force_overrides_and_restores() {
        force(Some(Kernel::Portable));
        assert_eq!(active(), Kernel::Portable);
        force(None);
        // Back to the env/CPU decision, whatever it is on this host.
        let _ = active();
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Kernel::Portable.name(), "portable");
        assert_eq!(Kernel::Avx2.name(), "avx2");
        assert_eq!(Kernel::Avx2Fma.name(), "avx2+fma");
    }
}
