//! A small persistent worker pool shared by every parallel kernel.
//!
//! The pool is spawned lazily on first use with
//! `available_parallelism() - 1` workers (override with the
//! `FT_TENSOR_THREADS` environment variable; `1` disables threading
//! entirely). Work is expressed as an indexed task set — a closure
//! invoked once per index — and [`parallel_for`] blocks until every
//! index has run, so closures may freely borrow from the caller's
//! stack.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism.** The pool never splits a single reduction across
//!    threads; callers partition work into disjoint output regions and
//!    each index is executed exactly once. Results cannot depend on
//!    thread count or scheduling.
//! 2. **No deadlocks from nesting.** A task running on a pool worker
//!    that calls [`parallel_for`] again executes its sub-tasks inline
//!    (the GEMM kernels hit this when a parallel evaluation pass calls
//!    a parallel matmul). Likewise, if another thread currently owns
//!    the pool, the caller runs its tasks itself rather than queueing.
//! 3. **Low dispatch overhead.** Workers are parked on a condvar
//!    between jobs; a dispatch is one mutex lock plus a wake, so even
//!    millisecond-scale GEMMs amortize it.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A captured task panic, re-raised on the submitting thread.
type PanicPayload = Box<dyn std::any::Any + Send>;

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// One dispatched task set: a borrowed closure plus claim/finish
/// counters. The pointer is type-erased to `'static` so workers can
/// hold it; [`parallel_for`] does not return until `finished == total`,
/// which keeps the borrow alive for as long as any worker can touch it.
struct Job {
    task: *const (dyn Fn(usize) + Sync + 'static),
    next: AtomicUsize,
    total: usize,
    finished: AtomicUsize,
    /// First panic raised by any task; re-thrown by the submitter once
    /// the job has fully drained. Tasks must never unwind out of
    /// `run_tasks` — an unwinding submitter would free the borrowed
    /// closure/output while workers still hold pointers to them, and a
    /// dead worker would leave `finished` short of `total` forever.
    panic: Mutex<Option<PanicPayload>>,
}

// SAFETY: `task` points at a `Sync` closure, so sharing it across
// threads is sound; the submitter keeps the referent alive until every
// task index has finished (see `parallel_for`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    /// Currently dispatched job, if any.
    job: Option<Arc<Job>>,
    /// Bumped on every dispatch so parked workers can tell a new job
    /// from a spurious wakeup on one they already drained.
    epoch: u64,
    /// Whether a submitter currently owns the pool.
    busy: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Submitters park here while workers drain their job.
    done_cv: Condvar,
    /// Number of spawned worker threads (not counting submitters).
    workers: usize,
}

impl Pool {
    /// Claims task indices until the job is drained, running each.
    /// Whoever finishes the last index clears the job and wakes the
    /// submitter.
    fn run_tasks(&self, job: &Job) {
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.total {
                break;
            }
            // SAFETY: the submitter blocks in `parallel_for` until
            // `finished == total`, so the closure is alive here. The
            // catch_unwind upholds that invariant when a task panics:
            // the panic is parked on the job and the index still counts
            // as finished, so neither workers nor the submitter unwind
            // while the job is live.
            let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.task })(i)));
            if let Err(payload) = result {
                let mut slot = job
                    .panic
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slot.get_or_insert(payload);
            }
            let done = job.finished.fetch_add(1, Ordering::AcqRel) + 1;
            if done == job.total {
                let mut st = self.state.lock().expect("pool mutex poisoned");
                st.job = None;
                st.busy = false;
                drop(st);
                self.done_cv.notify_all();
            }
        }
    }

    fn worker_loop(&self) {
        IN_POOL_WORKER.with(|f| f.set(true));
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool mutex poisoned");
                loop {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        if let Some(job) = st.job.clone() {
                            break job;
                        }
                    }
                    st = self.work_cv.wait(st).expect("pool mutex poisoned");
                }
            };
            self.run_tasks(&job);
        }
    }
}

fn desired_threads() -> usize {
    if let Ok(v) = std::env::var("FT_TENSOR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = desired_threads().saturating_sub(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                busy: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("ft-tensor-worker-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawning tensor pool worker");
        }
        pool
    })
}

/// Total parallelism the pool offers: worker threads plus the
/// submitting thread itself.
pub fn max_parallelism() -> usize {
    pool().workers + 1
}

/// Runs `task(0..tasks)` across the worker pool, blocking until every
/// index has executed exactly once. Falls back to an inline serial loop
/// when the pool has no workers, the caller is itself a pool worker
/// (nested dispatch), or another thread currently owns the pool —
/// callers therefore never deadlock and results never depend on where a
/// task ran.
pub fn parallel_for(tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    let pool = pool();
    let serial = tasks == 1 || pool.workers == 0 || IN_POOL_WORKER.with(Cell::get);
    if serial {
        for i in 0..tasks {
            task(i);
        }
        return;
    }
    // SAFETY: erasing the closure's lifetime is sound because this
    // function does not return until `finished == total`, after which
    // no worker dereferences `task` again (workers only touch the
    // closure between a successful index claim and the matching
    // `finished` increment).
    let task: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
    let job = Arc::new(Job {
        task,
        next: AtomicUsize::new(0),
        total: tasks,
        finished: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    {
        let mut st = pool.state.lock().expect("pool mutex poisoned");
        if st.busy {
            // Another submitter owns the pool; run inline instead of
            // queueing behind it (avoids lock convoys and keeps
            // worst-case latency bounded).
            drop(st);
            let task = unsafe { &*job.task };
            for i in 0..tasks {
                task(i);
            }
            return;
        }
        st.busy = true;
        st.job = Some(Arc::clone(&job));
        st.epoch = st.epoch.wrapping_add(1);
    }
    pool.work_cv.notify_all();
    // The submitter participates instead of idling.
    pool.run_tasks(&job);
    {
        let mut st = pool.state.lock().expect("pool mutex poisoned");
        while job.finished.load(Ordering::Acquire) < job.total {
            st = pool.done_cv.wait(st).expect("pool mutex poisoned");
        }
    }
    // Every index has run and no worker holds the task pointer any
    // more; it is now safe to unwind into the caller.
    let payload = job
        .panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_dispatch_completes() {
        let total = AtomicU64::new(0);
        parallel_for(8, &|_| {
            parallel_for(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        parallel_for(0, &|_| panic!("no tasks should run"));
        let ran = AtomicU64::new(0);
        parallel_for(1, &|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let counters: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for c in &counters {
                s.spawn(move || {
                    parallel_for(64, &|_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 64));
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(16, &|i| {
                assert!(i != 7, "task 7 died");
            });
        });
        assert!(result.is_err(), "task panic must reach the submitter");
        // The pool must remain usable: no dead workers, no stuck job.
        let n = AtomicU64::new(0);
        parallel_for(16, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(max_parallelism() >= 1);
    }
}
