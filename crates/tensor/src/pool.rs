//! A small persistent worker pool shared by every parallel kernel.
//!
//! The pool is spawned lazily on first use with
//! `available_parallelism() - 1` workers (override with the
//! `FT_TENSOR_THREADS` environment variable; `1` disables threading
//! entirely). Work is expressed as an indexed task set — a closure
//! invoked once per index — and [`parallel_for`] blocks until every
//! index has run, so closures may freely borrow from the caller's
//! stack.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism.** The pool never splits a single reduction across
//!    threads; callers partition work into disjoint output regions and
//!    each index is executed exactly once. Results cannot depend on
//!    thread count or scheduling.
//! 2. **No deadlocks from nesting.** A task running on a pool worker
//!    that calls [`parallel_for`] again executes its sub-tasks inline
//!    (the GEMM kernels hit this when a parallel evaluation pass calls
//!    a parallel matmul). Likewise, if another thread currently owns
//!    the pool, the caller runs its tasks itself rather than queueing.
//! 3. **Low dispatch overhead.** Workers are parked on a condvar
//!    between jobs; a dispatch is one mutex lock plus a wake, so even
//!    millisecond-scale GEMMs amortize it.
//!
//! Two fan-out granularities share this one pool: kernel tiles (GEMM
//! row panels) and whole clients (the round-level engine in
//! `ft_fedsim::exec`). [`parallel_for_budgeted`] lets the outer,
//! memory-heavy client fan-out cap its thread budget, and the
//! nested-dispatch guard keeps per-client GEMM fan-out from
//! oversubscribing the host while client fan-out is active: a GEMM
//! issued from inside a pool task runs inline on that worker.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A captured task panic, re-raised on the submitting thread.
type PanicPayload = Box<dyn std::any::Any + Send>;

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// One dispatched task set: a borrowed closure plus claim/finish
/// counters. The pointer is type-erased to `'static` so workers can
/// hold it; [`parallel_for`] does not return until `finished == total`,
/// which keeps the borrow alive for as long as any worker can touch it.
struct Job {
    task: *const (dyn Fn(usize) + Sync + 'static),
    next: AtomicUsize,
    total: usize,
    finished: AtomicUsize,
    /// Threads allowed to execute tasks of this job, counting the
    /// submitter. Workers beyond the budget leave the job alone — the
    /// knob behind [`parallel_for_budgeted`].
    max_claimants: usize,
    /// Threads currently (or ever) enrolled on this job. Starts at 1:
    /// the submitter is always enrolled.
    claimants: AtomicUsize,
    /// First panic raised by any task; re-thrown by the submitter once
    /// the job has fully drained. Tasks must never unwind out of
    /// `run_tasks` — an unwinding submitter would free the borrowed
    /// closure/output while workers still hold pointers to them, and a
    /// dead worker would leave `finished` short of `total` forever.
    panic: Mutex<Option<PanicPayload>>,
}

impl Job {
    /// Tries to enroll the calling worker within the job's thread
    /// budget. Enrollment never needs to be released: a job is consumed
    /// exactly once and dropped when drained.
    fn try_enroll(&self) -> bool {
        let mut cur = self.claimants.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_claimants {
                return false;
            }
            match self.claimants.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }
}

// SAFETY: `task` points at a `Sync` closure, so sharing it across
// threads is sound; the submitter keeps the referent alive until every
// task index has finished (see `parallel_for`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    /// Currently dispatched job, if any.
    job: Option<Arc<Job>>,
    /// Bumped on every dispatch so parked workers can tell a new job
    /// from a spurious wakeup on one they already drained.
    epoch: u64,
    /// Whether a submitter currently owns the pool.
    busy: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Submitters park here while workers drain their job.
    done_cv: Condvar,
    /// Number of spawned worker threads (not counting submitters).
    workers: usize,
}

impl Pool {
    /// Claims task indices until the job is drained, running each.
    /// Whoever finishes the last index clears the job and wakes the
    /// submitter.
    ///
    /// # Panics
    ///
    /// Panics if the pool mutex is poisoned, which only happens if a
    /// thread panicked *outside* the catch_unwind below — task panics
    /// are parked on the job instead.
    fn run_tasks(&self, job: &Job) {
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.total {
                break;
            }
            // SAFETY: the submitter blocks in `parallel_for` until
            // `finished == total`, so the closure is alive here. The
            // catch_unwind upholds that invariant when a task panics:
            // the panic is parked on the job and the index still counts
            // as finished, so neither workers nor the submitter unwind
            // while the job is live.
            let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.task })(i)));
            if let Err(payload) = result {
                let mut slot = job
                    .panic
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slot.get_or_insert(payload);
            }
            let done = job.finished.fetch_add(1, Ordering::AcqRel) + 1;
            if done == job.total {
                let mut st = self.state.lock().expect("pool mutex poisoned");
                st.job = None;
                st.busy = false;
                drop(st);
                self.done_cv.notify_all();
            }
        }
    }

    /// Parks until a new job epoch appears, then joins it.
    ///
    /// # Panics
    ///
    /// Panics if the pool mutex is poisoned (task panics never poison
    /// it; see [`Pool::run_tasks`]).
    fn worker_loop(&self) {
        IN_POOL_WORKER.with(|f| f.set(true));
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool mutex poisoned");
                loop {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        if let Some(job) = st.job.clone() {
                            break job;
                        }
                    }
                    st = self.work_cv.wait(st).expect("pool mutex poisoned");
                }
            };
            // A budgeted job may already have its full complement of
            // threads; late workers go back to sleep instead of
            // claiming tasks past the budget.
            if job.try_enroll() {
                self.run_tasks(&job);
            }
        }
    }
}

fn desired_threads() -> usize {
    if let Ok(v) = std::env::var("FT_TENSOR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool, spawned on first use.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a worker thread.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = desired_threads().saturating_sub(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                busy: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("ft-tensor-worker-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawning tensor pool worker");
        }
        pool
    })
}

/// Total parallelism the pool offers: worker threads plus the
/// submitting thread itself.
pub fn max_parallelism() -> usize {
    pool().workers + 1
}

/// Runs `task(0..tasks)` across the worker pool, blocking until every
/// index has executed exactly once. Falls back to an inline serial loop
/// when the pool has no workers, the caller is itself a pool worker
/// (nested dispatch), or another thread currently owns the pool —
/// callers therefore never deadlock and results never depend on where a
/// task ran.
pub fn parallel_for(tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    parallel_for_budgeted(tasks, usize::MAX, task);
}

/// [`parallel_for`] with a cap on how many threads (submitter
/// included) may execute tasks concurrently.
///
/// The cap exists for *outer* fan-outs whose tasks are whole units of
/// work rather than kernel tiles — e.g. one federated client's local
/// training, which pins a full model clone plus optimizer state in
/// memory for as long as the task runs. Budgeting the fan-out bounds
/// that peak footprint without giving up the shared pool. `max_threads`
/// does not change results: tasks are claimed from one atomic counter
/// and each index runs exactly once regardless of who runs it.
///
/// A `max_threads` of 1 degenerates to the inline serial loop without
/// touching the pool, so nested [`parallel_for`] calls issued by the
/// tasks (e.g. per-client GEMM fan-out) may still use every worker.
///
/// # Panics
///
/// A panic inside `task` is re-raised here on the submitting thread
/// once every index has run. Pool-mutex poisoning (unreachable via
/// task panics) also panics.
pub fn parallel_for_budgeted(tasks: usize, max_threads: usize, task: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    let pool = pool();
    let serial =
        tasks == 1 || max_threads <= 1 || pool.workers == 0 || IN_POOL_WORKER.with(Cell::get);
    if serial {
        for i in 0..tasks {
            task(i);
        }
        return;
    }
    // SAFETY: erasing the closure's lifetime is sound because this
    // function does not return until `finished == total`, after which
    // no worker dereferences `task` again (workers only touch the
    // closure between a successful index claim and the matching
    // `finished` increment).
    let task: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
    let job = Arc::new(Job {
        task,
        next: AtomicUsize::new(0),
        total: tasks,
        finished: AtomicUsize::new(0),
        max_claimants: max_threads,
        claimants: AtomicUsize::new(1),
        panic: Mutex::new(None),
    });
    {
        let mut st = pool.state.lock().expect("pool mutex poisoned");
        if st.busy {
            // Another submitter owns the pool; run inline instead of
            // queueing behind it (avoids lock convoys and keeps
            // worst-case latency bounded).
            drop(st);
            // SAFETY: `job.task` points at the caller's closure, which
            // outlives this call; no worker ever saw this job (it was
            // never installed in pool state), so the reference is
            // unique to this inline loop.
            let task = unsafe { &*job.task };
            for i in 0..tasks {
                task(i);
            }
            return;
        }
        st.busy = true;
        st.job = Some(Arc::clone(&job));
        st.epoch = st.epoch.wrapping_add(1);
    }
    pool.work_cv.notify_all();
    // The submitter participates instead of idling.
    pool.run_tasks(&job);
    {
        let mut st = pool.state.lock().expect("pool mutex poisoned");
        while job.finished.load(Ordering::Acquire) < job.total {
            st = pool.done_cv.wait(st).expect("pool mutex poisoned");
        }
    }
    // Every index has run and no worker holds the task pointer any
    // more; it is now safe to unwind into the caller.
    let payload = job
        .panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_dispatch_completes() {
        let total = AtomicU64::new(0);
        parallel_for(8, &|_| {
            parallel_for(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        parallel_for(0, &|_| panic!("no tasks should run"));
        let ran = AtomicU64::new(0);
        parallel_for(1, &|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let counters: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for c in &counters {
                s.spawn(move || {
                    parallel_for(64, &|_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 64));
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_for(16, &|i| {
                assert!(i != 7, "task 7 died");
            });
        });
        assert!(result.is_err(), "task panic must reach the submitter");
        // The pool must remain usable: no dead workers, no stuck job.
        let n = AtomicU64::new(0);
        parallel_for(16, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(max_parallelism() >= 1);
    }

    #[test]
    fn budgeted_runs_every_index_exactly_once() {
        for budget in [1, 2, usize::MAX] {
            let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            parallel_for_budgeted(hits.len(), budget, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn budget_caps_concurrency() {
        // High-water mark of concurrently running tasks must never
        // exceed the budget (trivially satisfied on a single-core
        // host; the multi-worker case is forced in
        // tests/pool_budget.rs, which pins the pool size).
        let budget = 2usize;
        let running = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        parallel_for_budgeted(64, budget, &|_| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(50));
            running.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= budget as u64);
    }

    #[test]
    fn budget_of_one_leaves_pool_free_for_nested_dispatch() {
        // With a serial outer loop the pool is not owned, so an inner
        // parallel_for may still dispatch; either way every index runs.
        let total = AtomicU64::new(0);
        parallel_for_budgeted(4, 1, &|_| {
            parallel_for(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }
}
