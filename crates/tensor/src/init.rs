//! Deterministic weight initialization.
//!
//! All randomness in the workspace flows through caller-provided RNGs so
//! experiment harnesses can reproduce runs exactly from a seed.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

use crate::Tensor;

/// Xavier/Glorot uniform initialization over `[-a, a]` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Appropriate for layers followed by symmetric activations.
pub fn xavier_uniform(rng: &mut impl Rng, dims: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    sample(rng, dims, dist)
}

/// He/Kaiming normal initialization with std `sqrt(2 / fan_in)`.
///
/// Appropriate for ReLU networks, which is what all FedTrans cells use.
pub fn he_normal(rng: &mut impl Rng, dims: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    // ft-lint: allow(P001) — std derives from `fan_in.max(1)`, always finite and positive.
    let dist = Normal::new(0.0, std).expect("std is finite and positive");
    sample(rng, dims, dist)
}

/// Uniform initialization over `[lo, hi]`.
pub fn uniform(rng: &mut impl Rng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let dist = Uniform::new_inclusive(lo, hi);
    sample(rng, dims, dist)
}

fn sample<D: Distribution<f32>>(rng: &mut impl Rng, dims: &[usize], dist: D) -> Tensor {
    let volume: usize = dims.iter().product();
    let data: Vec<f32> = (0..volume).map(|_| dist.sample(rng)).collect();
    // ft-lint: allow(P001) — exactly `dims.iter().product()` samples drawn above.
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn same_seed_same_weights() {
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        let ta = he_normal(&mut a, &[4, 4], 4);
        let tb = he_normal(&mut b, &[4, 4], 4);
        assert_eq!(ta, tb);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, &[64, 64], 64, 64);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= a + 1e-6));
    }

    #[test]
    fn he_normal_has_reasonable_std() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = he_normal(&mut rng, &[100, 100], 100);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / 100.0;
        assert!((var - expected).abs() < expected * 0.2, "var={var}");
    }
}
