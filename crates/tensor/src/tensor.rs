use serde::{Deserialize, Serialize};

use crate::{scratch, Result, Shape, TensorError};

/// A dense, row-major, owned `f32` tensor.
///
/// `Tensor` is the common currency between the NN substrate, the model
/// transformation code, and the aggregation logic. It is intentionally
/// simple: contiguous storage, explicit shape, no views. Model surgery
/// (widening/deepening cells, cropping for HeteroFL-style aggregation)
/// manipulates `Tensor`s through the safe accessors here.
///
/// # Storage lifecycle
///
/// Data buffers are checked out of the per-thread scratch pool
/// ([`crate::scratch`]) on construction and returned to it on drop, so
/// steady-state loops that create and destroy same-shaped tensors every
/// iteration stop touching the allocator once warm. This is invisible
/// to callers: contents and semantics are exactly those of a
/// `Vec<f32>`-backed tensor.
///
/// ```
/// use ft_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Assembles a tensor from parts without validation (crate-internal
    /// fast path; callers guarantee `data.len() == shape.volume()`).
    pub(crate) fn from_parts(shape: Shape, data: Vec<f32>) -> Self {
        debug_assert_eq!(shape.volume(), data.len());
        Tensor { shape, data }
    }

    /// Creates a tensor from a buffer and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = scratch::take_zeroed(shape.volume());
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let mut data = scratch::take(shape.volume());
        data.fill(value);
        Tensor { shape, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Reshapes in place without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if volumes differ.
    pub fn reshape(&mut self, dims: &[usize]) -> Result<()> {
        let new_shape = Shape::new(dims);
        if new_shape.volume() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: new_shape.volume(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Returns a reshaped copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if volumes differ.
    pub fn reshaped(&self, dims: &[usize]) -> Result<Self> {
        let mut out = self.clone();
        out.reshape(dims)?;
        Ok(out)
    }

    /// Number of rows, treating the tensor as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn rows(&self) -> Result<usize> {
        self.shape.expect_rank(2)?;
        self.shape.dim(0)
    }

    /// Number of columns, treating the tensor as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn cols(&self) -> Result<usize> {
        self.shape.expect_rank(2)?;
        self.shape.dim(1)
    }

    /// Element access for a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of range;
    /// this accessor is meant for test and surgery code where the shape is
    /// established beforehand.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        let cols = self.shape.dims()[1];
        self.data[r * cols + c]
    }

    /// Mutable element access for a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::at`].
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let cols = self.shape.dims()[1];
        &mut self.data[r * cols + c]
    }

    /// Copies row `r` of a rank-2 tensor into a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r` exceeds the row
    /// count, or [`TensorError::RankMismatch`] for non-matrices.
    pub fn row(&self, r: usize) -> Result<Vec<f32>> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                axis: 0,
                index: r,
                len: rows,
            });
        }
        Ok(self.data[r * cols..(r + 1) * cols].to_vec())
    }

    /// Builds a matrix from an iterator of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when no rows are supplied and
    /// [`TensorError::ShapeMismatch`] when row lengths disagree.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let first = rows.first().ok_or(TensorError::Empty)?;
        let cols = first.len();
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    left: vec![rows.len(), cols],
                    right: vec![rows.len(), row.len()],
                });
            }
        }
        let mut data = scratch::take(rows.len() * cols);
        for (row, dst) in rows.iter().zip(data.chunks_exact_mut(cols.max(1))) {
            dst.copy_from_slice(row);
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor as a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the range is invalid.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Self> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfBounds {
                axis: 0,
                index: end,
                len: rows,
            });
        }
        let mut data = scratch::take((end - start) * cols);
        data.copy_from_slice(&self.data[start * cols..end * cols]);
        Ok(Tensor::from_parts(Shape::new(&[end - start, cols]), data))
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Self> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        // Every slot is written exactly once, so unzeroed scratch is safe.
        let mut out = scratch::take(self.data.len());
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(Tensor::from_parts(Shape::new(&[cols, rows]), out))
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = scratch::take(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Copies in place, reusing the existing buffer when it is large
    /// enough (same-shaped tensors always are) — the allocation-free
    /// path for refreshing persistent gradient/weight snapshots.
    fn clone_from(&mut self, source: &Self) {
        self.shape = source.shape;
        self.data.clear();
        self.data.extend_from_slice(&source.data);
    }
}

impl Drop for Tensor {
    /// Returns the data buffer to the per-thread scratch pool.
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.data));
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor; its `Debug` form is never empty of content.
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(0, 1), 0.0);
        assert_eq!(t.at(2, 2), 1.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn slice_rows_extracts_contiguous_block() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape().dims(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        t.reshape(&[4]).unwrap();
        assert_eq!(t.shape().dims(), &[4]);
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn from_rows_checks_lengths() {
        assert!(Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.shape().dims(), &[2, 2]);
    }

    #[test]
    fn recycled_buffers_never_leak_contents() {
        // A dropped tensor's buffer may be reused; fresh constructors
        // must still observe fully initialized contents.
        drop(Tensor::full(&[64], 7.0));
        let z = Tensor::zeros(&[64]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        drop(Tensor::full(&[64], 3.0));
        let o = Tensor::ones(&[64]);
        assert!(o.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn clone_from_reuses_capacity() {
        let src = Tensor::full(&[128], 2.0);
        let mut dst = Tensor::zeros(&[128]);
        let ptr = dst.data().as_ptr();
        dst.clone_from(&src);
        assert_eq!(
            dst.data().as_ptr(),
            ptr,
            "same-size clone_from must not realloc"
        );
        assert_eq!(dst, src);
    }

    #[test]
    fn into_vec_hands_off_storage() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(t.into_vec(), vec![1.0, 2.0]);
    }
}
