//! Element-wise arithmetic, broadcasting helpers, and reductions.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// In-place `self += alpha * other`, the axpy primitive used by every
    /// aggregation rule in the workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let data = self.data().iter().map(|x| x * alpha).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("same shape")
    }

    /// Scales in place by `alpha`.
    pub fn scale_mut(&mut self, alpha: f32) {
        for x in self.data_mut() {
            *x *= alpha;
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("same shape")
    }

    /// Adds a length-`cols` bias vector to every row of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                left: vec![rows, cols],
                right: bias.shape().dims().to_vec(),
            });
        }
        let mut out = self.clone();
        let b = bias.data();
        for r in 0..rows {
            for c in 0..cols {
                out.data_mut()[r * cols + c] += b[c];
            }
        }
        Ok(out)
    }

    /// Sums each column of a matrix, producing a length-`cols` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c] += self.data()[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest element; `None` when empty.
    pub fn max(&self) -> Option<f32> {
        self.data().iter().copied().fold(None, |acc, x| {
            Some(match acc {
                Some(m) if m >= x => m,
                _ => x,
            })
        })
    }

    /// Index of the largest element in each row of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for c in 0..cols {
                let v = self.data()[r * cols + c];
                if v > best_v {
                    best_v = v;
                    best = c;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[0.5, 0.5, 0.5, 0.5], &[2, 2]);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[1, 2]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 4.0], &[2]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = t(&[0.0, 0.0, 0.0, 0.0], &[2, 2]);
        let bias = t(&[1.0, 2.0], &[2]);
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn sum_rows_reduces_columns() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = a.sum_rows().unwrap();
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_finds_maxima() {
        let a = t(&[1.0, 5.0, 2.0, 9.0, 0.0, -1.0], &[2, 3]);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn norm_is_euclidean() {
        let a = t(&[3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }
}
