//! Element-wise arithmetic, broadcasting helpers, and reductions.
//!
//! Out-of-place operators draw their result buffers from the
//! per-thread scratch pool ([`crate::scratch`]); the in-place
//! `*_assign` family delegates to the fused kernels in
//! [`crate::fused`], which large call sites across the workspace use
//! to keep the steady-state train step allocation-free.

use crate::{fused, scratch, Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: other.shape().dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let mut data = scratch::take(self.len());
        for ((o, &a), &b) in data.iter_mut().zip(self.data()).zip(other.data()) {
            *o = a + b;
        }
        Ok(Tensor::from_parts(*self.shape(), data))
    }

    /// In-place element-wise sum, `self += other`.
    ///
    /// Bit-identical to [`Tensor::add`] without the result buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        fused::add_assign(self.data_mut(), other.data());
        Ok(())
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let mut data = scratch::take(self.len());
        for ((o, &a), &b) in data.iter_mut().zip(self.data()).zip(other.data()) {
            *o = a - b;
        }
        Ok(Tensor::from_parts(*self.shape(), data))
    }

    /// In-place element-wise difference, `self -= other`.
    ///
    /// Bit-identical to [`Tensor::sub`] without the result buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        fused::sub_assign(self.data_mut(), other.data());
        Ok(())
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let mut data = scratch::take(self.len());
        for ((o, &a), &b) in data.iter_mut().zip(self.data()).zip(other.data()) {
            *o = a * b;
        }
        Ok(Tensor::from_parts(*self.shape(), data))
    }

    /// In-place Hadamard product, `self *= other`.
    ///
    /// Bit-identical to [`Tensor::mul`] without the result buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        fused::mul_assign(self.data_mut(), other.data());
        Ok(())
    }

    /// In-place `self += alpha * other`, the axpy primitive used by every
    /// aggregation rule in the workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        fused::axpy(self.data_mut(), alpha, other.data());
        Ok(())
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut data = scratch::take(self.len());
        for (o, &a) in data.iter_mut().zip(self.data()) {
            *o = a * alpha;
        }
        Tensor::from_parts(*self.shape(), data)
    }

    /// Scales in place by `alpha`.
    pub fn scale_mut(&mut self, alpha: f32) {
        fused::scale_assign(self.data_mut(), alpha);
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = scratch::take(self.len());
        for (o, &a) in data.iter_mut().zip(self.data()) {
            *o = f(a);
        }
        Tensor::from_parts(*self.shape(), data)
    }

    /// Adds a length-`cols` bias vector to every row of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        if bias.len() != cols {
            return Err(TensorError::ShapeMismatch {
                left: vec![rows, cols],
                right: bias.shape().dims().to_vec(),
            });
        }
        let mut out = self.clone();
        let b = bias.data();
        for row in out.data_mut().chunks_exact_mut(cols.max(1)) {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
        Ok(out)
    }

    /// Sums each column of a matrix, producing a length-`cols` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        let mut out = scratch::take_zeroed(cols);
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest element; `None` when empty.
    pub fn max(&self) -> Option<f32> {
        self.data().iter().copied().fold(None, |acc, x| {
            Some(match acc {
                Some(m) if m >= x => m,
                _ => x,
            })
        })
    }

    /// Index of the largest element in each row of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            out.push(self.argmax_row(r, cols));
        }
        Ok(out)
    }

    /// Argmax of one row (allocation-free helper behind
    /// [`Tensor::argmax_rows`] and `ft_nn::accuracy`).
    pub(crate) fn argmax_row(&self, r: usize, cols: usize) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (c, &v) in self.data()[r * cols..(r + 1) * cols].iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        best
    }

    /// Fraction of rows whose argmax equals the paired label; `0.0` for
    /// an empty batch. Allocation-free (no materialized prediction
    /// vector) — the accuracy inner loop of every evaluation pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_accuracy(&self, labels: &[usize]) -> Result<f32> {
        let rows = self.rows()?;
        let cols = self.cols()?;
        if rows == 0 {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate().take(rows) {
            if self.argmax_row(r, cols) == label {
                correct += 1;
            }
        }
        Ok(correct as f32 / rows as f32)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[0.5, 0.5, 0.5, 0.5], &[2, 2]);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[1, 2]);
        assert!(a.add(&b).is_err());
        assert!(a.clone().add_assign(&b).is_err());
        assert!(a.clone().sub_assign(&b).is_err());
        assert!(a.clone().mul_assign(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 4.0], &[2]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn assign_ops_match_out_of_place() {
        let a = t(&[1.5, -2.0, 0.25, 8.0], &[4]);
        let b = t(&[0.3, 7.0, -1.5, 0.125], &[4]);
        let mut ip = a.clone();
        ip.add_assign(&b).unwrap();
        assert_eq!(ip, a.add(&b).unwrap());
        let mut ip = a.clone();
        ip.sub_assign(&b).unwrap();
        assert_eq!(ip, a.sub(&b).unwrap());
        let mut ip = a.clone();
        ip.mul_assign(&b).unwrap();
        assert_eq!(ip, a.mul(&b).unwrap());
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = t(&[0.0, 0.0, 0.0, 0.0], &[2, 2]);
        let bias = t(&[1.0, 2.0], &[2]);
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn sum_rows_reduces_columns() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = a.sum_rows().unwrap();
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_finds_maxima() {
        let a = t(&[1.0, 5.0, 2.0, 9.0, 0.0, -1.0], &[2, 3]);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn argmax_accuracy_counts_matches() {
        let a = t(&[0.9, 0.1, 0.2, 0.8], &[2, 2]);
        assert_eq!(a.argmax_accuracy(&[0, 1]).unwrap(), 1.0);
        assert_eq!(a.argmax_accuracy(&[1, 0]).unwrap(), 0.0);
        assert_eq!(a.argmax_accuracy(&[0, 0]).unwrap(), 0.5);
        assert_eq!(Tensor::zeros(&[0, 3]).argmax_accuracy(&[]).unwrap(), 0.0);
    }

    #[test]
    fn norm_is_euclidean() {
        let a = t(&[3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }
}
