//! Matrix multiplication kernels.
//!
//! Every simulated client's forward/backward pass funnels through the
//! three GEMM variants here, so they are the hottest code in the repo.
//! The implementation is a cache-blocked, register-tiled kernel that
//! dispatches row panels across the persistent worker pool
//! ([`crate::pool`]) for large shapes and falls back to a plain loop
//! nest below a tuned size threshold.
//!
//! # Determinism
//!
//! Results are bit-for-bit reproducible and independent of thread
//! count: each output element is owned by exactly one task, and its
//! dot product accumulates in ascending-`k` order with a single `f32`
//! accumulator on every code path (small, tiled-serial, and parallel
//! alike). No FMA contraction, no split reductions.
//!
//! # Non-finite propagation
//!
//! The kernels deliberately do **not** skip zero multiplicands:
//! `0 × NaN` and `0 × ∞` must produce `NaN` so divergent weights
//! surface in metrics instead of being silently masked (an earlier
//! version short-circuited `a == 0.0` rows and swallowed them).

use crate::scratch::{self, ScratchVec};
use crate::{pool, simd, tune, Result, Tensor, TensorError};

/// Rows per register tile.
pub(crate) const MR: usize = 4;
/// Columns per register tile (one 8-lane f32 vector — a full `__m256`
/// on AVX2; MR·NR/8 + operand registers fit the 16-register SIMD file).
pub(crate) const NR: usize = 8;
/// Below this many multiply-adds the plain loop nest beats the tiled
/// kernel (no blocking bookkeeping, no operand transposes).
const SMALL_WORK: usize = 1 << 15;
/// At or above this many multiply-adds, row panels are fanned out
/// across the worker pool; under it, thread dispatch costs more than
/// it buys.
const PAR_WORK: usize = 1 << 20;

impl Tensor {
    /// Matrix product `self @ other` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when inner dimensions
    /// disagree and [`TensorError::RankMismatch`] for non-matrices.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.rows()?, self.cols()?);
        let (k2, n) = (other.rows()?, other.cols()?);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: vec![m, k],
                right: vec![k2, n],
            });
        }
        let out = gemm(self.data(), other.data(), m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `self^T @ other` without the caller materializing the
    /// transpose.
    ///
    /// Used by linear-layer backward passes (`dW = X^T dY`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when the row counts of
    /// the two operands disagree.
    pub fn t_matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = (self.rows()?, self.cols()?);
        let (k2, n) = (other.rows()?, other.cols()?);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: vec![m, k],
                right: vec![k2, n],
            });
        }
        let a = self.data();
        let b = other.data();
        if m * n * k < SMALL_WORK {
            // p-outer loop reads A rows contiguously; no transpose.
            let mut out = scratch::take_zeroed(m * n);
            for p in 0..k {
                let arow = &a[p * m..(p + 1) * m];
                let brow = &b[p * n..(p + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    let orow = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            return Tensor::from_vec(out, &[m, n]);
        }
        // Transpose A once (O(mk)) to reuse the row-major core (O(mkn)).
        let at = transposed(a, k, m);
        let out = gemm(&at, b, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `self @ other^T` without the caller materializing the
    /// transpose.
    ///
    /// Used by linear-layer backward passes (`dX = dY W^T`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when the column counts
    /// of the two operands disagree.
    pub fn matmul_t(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.rows()?, self.cols()?);
        let (n, k2) = (other.rows()?, other.cols()?);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: vec![m, k],
                right: vec![n, k2],
            });
        }
        let a = self.data();
        let b = other.data();
        if m * n * k < SMALL_WORK {
            // Every element is stored exactly once, so unzeroed
            // scratch is safe here.
            let mut out = scratch::take(m * n);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    out[i * n + j] = acc;
                }
            }
            return Tensor::from_vec(out, &[m, n]);
        }
        let bt = transposed(b, n, k);
        let out = gemm(a, &bt, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }
}

/// Transposes a `rows × cols` row-major buffer into a scratch-backed
/// `cols × rows` one (returned to the pool when the guard drops).
/// Every slot is written exactly once, so unzeroed scratch is safe.
fn transposed(src: &[f32], rows: usize, cols: usize) -> ScratchVec {
    let mut out = ScratchVec::take(src.len());
    for r in 0..rows {
        let srow = &src[r * cols..(r + 1) * cols];
        for (c, &v) in srow.iter().enumerate() {
            out[c * rows + r] = v;
        }
    }
    out
}

/// Shares a mutable output pointer with pool tasks that each write a
/// disjoint row range.
struct PanelPtr(*mut f32);
// SAFETY: tasks index strictly disjoint row panels (enforced by the
// chunking arithmetic in `gemm`), so concurrent writes never alias.
unsafe impl Send for PanelPtr {}
unsafe impl Sync for PanelPtr {}

/// `A[m×k] @ B[k×n]`, both row-major, into a scratch-pooled row-major
/// buffer (the caller hands it to a `Tensor`, which recycles it on
/// drop). Zeroed up front because the panel kernel accumulates.
fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = scratch::take_zeroed(m * n);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    let work = m * n * k;
    if work < SMALL_WORK {
        // ikj loop: row-panel axpy, cache-friendly without blocking.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        return out;
    }
    // Don't touch (and lazily spawn) the pool for shapes that will
    // never parallelize.
    let threads = if work >= PAR_WORK {
        pool::max_parallelism()
    } else {
        1
    };
    if work >= PAR_WORK && threads > 1 && m >= 2 * MR {
        // Oversplit rows ~2× past the thread count so the atomic task
        // queue load-balances uneven finish times.
        let chunk = m.div_ceil(threads * 2).max(MR).next_multiple_of(MR);
        let tasks = m.div_ceil(chunk);
        let out_ptr = PanelPtr(out.as_mut_ptr());
        // Capture the Sync wrapper, not the raw pointer field.
        let out_ptr = &out_ptr;
        pool::parallel_for(tasks, &|t| {
            let r0 = t * chunk;
            let r1 = ((t + 1) * chunk).min(m);
            // SAFETY: `r0..r1` row ranges are disjoint across tasks and
            // in-bounds; the buffer outlives `parallel_for`, which
            // blocks until every task completes.
            let panel =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(r0 * n), (r1 - r0) * n) };
            gemm_panel(&a[r0 * k..r1 * k], b, panel, r1 - r0, k, n, 0, n);
        });
    } else if work >= PAR_WORK && threads > 1 && n >= 2 * NR {
        // Short-and-wide shapes (the batched conv GEMMs: a handful of
        // output channels times batch·H·W columns) split the *column*
        // dimension instead. Tasks compute disjoint column windows into
        // private buffers and splice them into `out` through raw
        // pointers — interleaved `&mut` windows of one slice would
        // alias. Per-element arithmetic is identical either way, so
        // results stay bit-equal to the serial path.
        let chunk = n.div_ceil(threads * 2).max(NR).next_multiple_of(NR);
        let tasks = n.div_ceil(chunk);
        let out_ptr = PanelPtr(out.as_mut_ptr());
        let out_ptr = &out_ptr;
        pool::parallel_for(tasks, &|t| {
            let j0 = t * chunk;
            let j1 = ((t + 1) * chunk).min(n);
            let nw = j1 - j0;
            // Checked out of the executing worker's own scratch pool;
            // zeroed because the panel kernel accumulates into it.
            let mut window = ScratchVec::take_zeroed(m * nw);
            gemm_panel(a, b, &mut window, m, k, nw, j0, n);
            for (i, row) in window.chunks_exact(nw).enumerate() {
                // SAFETY: `j0..j1` column ranges are disjoint across
                // tasks and in-bounds; the buffer outlives
                // `parallel_for`, which blocks until every task
                // completes.
                unsafe {
                    std::ptr::copy_nonoverlapping(row.as_ptr(), out_ptr.0.add(i * n + j0), nw);
                }
            }
        });
    } else {
        gemm_panel(a, b, &mut out, m, k, n, 0, n);
    }
    out
}

/// Tiled core: accumulates `out += a @ b[:, jc..jc + n]` for one row
/// panel. `a` is `rows × k`, `out` is a contiguous `rows × n` window,
/// and `b` has row stride `ldb` with the window starting at column
/// `jc` (`jc = 0, ldb = n` for a full-width panel).
///
/// Blocking is `pc` (k, autotuned `kc`) → `ic` (rows, autotuned `mc`)
/// → `j0` (columns, `NR`): per k-block, each `mc`-row slice of A is
/// packed into `MR`-interleaved micro-panels that stay L2-resident
/// while every column window streams past, and each B block into a
/// contiguous `kc × NR` slab, so the micro-kernel reads two dense
/// streams (BLIS-style). Block sizes come from [`tune::config`] and
/// cannot change results: every output element accumulates k-blocks in
/// ascending `pc` order regardless of how `ic`/`j0` interleave, and a
/// block boundary just round-trips the accumulator through an exact
/// `f32` store. Edge tiles are zero-padded into the same full-size
/// micro-kernel; padded lanes are computed and then discarded by the
/// partial store, which cannot change the kept values (each output
/// element only ever accumulates its own row/column lane).
fn gemm_panel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    jc: usize,
    ldb: usize,
) {
    let kern = simd::active();
    let cfg = tune::active();
    let kc_max = cfg.kc.min(k);
    let mc = cfg.mc.min(rows.next_multiple_of(MR));
    let block_groups = mc.div_ceil(MR);
    // The A pack panel comes from the executing thread's scratch pool
    // — the steady-state GEMM invocation allocates nothing. Unzeroed
    // scratch is safe: full tiles are overwritten before every read
    // and edge tiles are explicitly zero-filled below. The B slab has
    // a compile-time bound (`KC_MAX × NR` = 16 KiB), so it lives on
    // the stack — and its statically known extent is what lets LLVM
    // keep the micro-kernel's bounds checks out of the k-loop (an
    // opaque, pool-provided slab measurably de-vectorizes the kernel).
    let mut apack = ScratchVec::take(block_groups * MR * kc_max);
    let mut bpack = [0.0f32; tune::KC_MAX * NR];
    let mut pc = 0;
    while pc < k {
        let kc = (k - pc).min(kc_max);
        let mut ic = 0;
        while ic < rows {
            let mh = (rows - ic).min(mc);
            let groups = mh.div_ceil(MR);
            for g in 0..groups {
                let r0 = ic + g * MR;
                let rh = (rows - r0).min(MR);
                let dst = &mut apack[g * MR * kc..(g + 1) * MR * kc];
                if rh < MR {
                    dst.fill(0.0);
                }
                for r in 0..rh {
                    let src = &a[(r0 + r) * k + pc..(r0 + r) * k + pc + kc];
                    for (p, &v) in src.iter().enumerate() {
                        dst[p * MR + r] = v;
                    }
                }
            }
            let mut j0 = 0;
            while j0 < n {
                let jw = (n - j0).min(NR);
                if jw < NR {
                    bpack[..kc * NR].fill(0.0);
                }
                for p in 0..kc {
                    let base = (pc + p) * ldb + jc + j0;
                    bpack[p * NR..p * NR + jw].copy_from_slice(&b[base..base + jw]);
                }
                for g in 0..groups {
                    let r0 = ic + g * MR;
                    let rh = (rows - r0).min(MR);
                    micro_tile(
                        kern,
                        &apack[g * MR * kc..(g + 1) * MR * kc],
                        &bpack,
                        out,
                        r0,
                        rh,
                        j0,
                        jw,
                        kc,
                        n,
                    );
                }
                j0 += jw;
            }
            ic += mh;
        }
        pc += kc;
    }
}

/// `MR × NR` register tile over packed operands: accumulators live in
/// registers across the k-block; `apack` is `kc × MR` (row-interleaved),
/// `bpack` is `kc × NR`. Stores only the `rh × jw` live sub-tile.
///
/// The k-loop dispatches on `kern`: the AVX2 tier executes the same
/// mul-then-add per lane (bit-identical, see [`crate::simd`]), the
/// opt-in FMA tier contracts them, and everything else runs the
/// portable loop. Accumulator copy-in/out is shared by all tiers.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_tile(
    kern: simd::Kernel,
    apack: &[f32],
    bpack: &[f32],
    out: &mut [f32],
    r0: usize,
    rh: usize,
    j0: usize,
    jw: usize,
    kc: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().take(rh).enumerate() {
        let base = (r0 + r) * n + j0;
        accr[..jw].copy_from_slice(&out[base..base + jw]);
    }
    match kern {
        #[cfg(target_arch = "x86_64")]
        simd::Kernel::Avx2 => {
            // SAFETY: `simd::active` only returns tiers the CPU
            // supports; apack/bpack hold kc·MR / kc·NR elements.
            unsafe { simd::x86::gemm_micro_avx2(apack, bpack, &mut acc, kc) }
        }
        #[cfg(target_arch = "x86_64")]
        simd::Kernel::Avx2Fma => {
            // SAFETY: as above (FMA support verified by `simd::active`).
            unsafe { simd::x86::gemm_micro_fma(apack, bpack, &mut acc, kc) }
        }
        _ => {
            for p in 0..kc {
                let arow = &apack[p * MR..p * MR + MR];
                let brow = &bpack[p * NR..p * NR + NR];
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = arow[r];
                    for (x, &bv) in accr.iter_mut().zip(brow) {
                        *x += av * bv;
                    }
                }
            }
        }
    }
    for (r, accr) in acc.iter().take(rh).enumerate() {
        let base = (r0 + r) * n + j0;
        out[base..base + jw].copy_from_slice(&accr[..jw]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[2, 3]);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fast, slow);
    }

    /// Serial reference with the same accumulation order the kernels
    /// guarantee: ascending `k`, one accumulator per element.
    fn reference(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.rows().unwrap(), a.cols().unwrap());
        let n = b.cols().unwrap();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(i, p) * b.at(p, j);
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n]).unwrap()
    }

    #[test]
    fn column_window_panels_match_the_full_panel() {
        // The column-split parallel path computes disjoint (jc, width)
        // windows; splicing them together must reproduce the full-width
        // panel bit-for-bit.
        let (m, k, n) = (5, 150, 64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = crate::uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = crate::uniform(&mut rng, &[k, n], -1.0, 1.0);
        let mut full = vec![0.0f32; m * n];
        gemm_panel(a.data(), b.data(), &mut full, m, k, n, 0, n);
        let mut spliced = vec![0.0f32; m * n];
        for jc in (0..n).step_by(NR) {
            let nw = (n - jc).min(NR);
            let mut window = vec![0.0f32; m * nw];
            gemm_panel(a.data(), b.data(), &mut window, m, k, nw, jc, n);
            for (i, row) in window.chunks_exact(nw).enumerate() {
                spliced[i * n + jc..i * n + jc + nw].copy_from_slice(row);
            }
        }
        assert_eq!(full, spliced);
    }

    #[test]
    fn large_shapes_cross_the_tiled_and_parallel_paths() {
        // 96×70×130 exceeds SMALL_WORK; 128×128×128 reaches PAR_WORK
        // (row split) and 4×600×600 the short-and-wide column split
        // when a multi-core pool exists. All must agree with the
        // reference bit-for-bit.
        for (m, k, n) in [(96, 70, 130), (128, 128, 128), (4, 600, 600)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64((m * n) as u64);
            let a = crate::uniform(&mut rng, &[m, k], -1.0, 1.0);
            let b = crate::uniform(&mut rng, &[k, n], -1.0, 1.0);
            assert_eq!(a.matmul(&b).unwrap(), reference(&a, &b), "{m}x{k}x{n}");
        }
    }

    use rand::SeedableRng;

    #[test]
    fn nan_weight_poisons_matmul_product() {
        // Regression: the old kernel skipped `a == 0.0` rows, so a NaN
        // in B vanished from the product when multiplied by zero.
        let a = t(&[0.0, 1.0], &[1, 2]);
        let b = t(&[f32::NAN, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert!(c.data()[0].is_nan(), "0 x NaN must propagate NaN");
        assert!(c.data()[1].is_finite());
    }

    #[test]
    fn nan_weight_poisons_t_matmul_product() {
        let a = t(&[0.0, 1.0], &[2, 1]);
        let b = t(&[f32::NAN, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.t_matmul(&b).unwrap();
        assert!(c.data()[0].is_nan());
    }

    #[test]
    fn infinity_times_zero_poisons_matmul_t_product() {
        let a = t(&[0.0, 1.0], &[1, 2]);
        let b = t(&[f32::INFINITY, 2.0], &[1, 2]);
        let c = a.matmul_t(&b).unwrap();
        assert!(c.data()[0].is_nan(), "0 x inf must propagate NaN");
    }

    #[test]
    fn empty_dimensions_yield_empty_or_zero_products() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[0, 2]);

        // Zero-length inner dimension: the product is all zeros.
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
