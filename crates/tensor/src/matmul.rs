//! Matrix multiplication kernels.
//!
//! The workloads in this reproduction are dominated by small-to-medium
//! GEMMs (batch × features times features × hidden). A cache-friendly
//! ikj loop order with a transposed variant covers every call site in the
//! NN substrate without pulling in a BLAS dependency.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product `self @ other` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when inner dimensions
    /// disagree and [`TensorError::RankMismatch`] for non-matrices.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.rows()?, self.cols()?);
        let (k2, n) = (other.rows()?, other.cols()?);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: vec![m, k],
                right: vec![k2, n],
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `self^T @ other` without materializing the transpose.
    ///
    /// Used by linear-layer backward passes (`dW = X^T dY`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when the row counts of
    /// the two operands disagree.
    pub fn t_matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = (self.rows()?, self.cols()?);
        let (k2, n) = (other.rows()?, other.cols()?);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: vec![m, k],
                right: vec![k2, n],
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `self @ other^T` without materializing the transpose.
    ///
    /// Used by linear-layer backward passes (`dX = dY W^T`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] when the column counts
    /// of the two operands disagree.
    pub fn matmul_t(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.rows()?, self.cols()?);
        let (n, k2) = (other.rows()?, other.cols()?);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left: vec![m, k],
                right: vec![n, k2],
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[2, 3]);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(fast, slow);
    }
}
