//! Fused, in-place element-wise kernels for the steady-state hot path.
//!
//! Each kernel makes exactly one pass over its operands with zero
//! temporary storage, replacing chains like "clone the gradient,
//! adjust it, then loop again to update the parameter" with a single
//! fused loop. The per-element arithmetic — operation order and
//! operand order — is copied verbatim from the out-of-place code it
//! replaces, so results are bit-for-bit identical (0 ULP), which the
//! `proptest_fused` suite pins.
//!
//! # Parallelism and determinism
//!
//! Above [`PAR_ELEMS`] elements a kernel fans out over the shared
//! worker pool ([`crate::pool`]) in disjoint index ranges. Every
//! element is written by exactly one task and no kernel here performs
//! a cross-element reduction, so results are independent of thread
//! count and scheduling by construction — the same discipline the
//! GEMM kernels follow.
//!
//! # SIMD
//!
//! Each per-range body dispatches on [`crate::simd::active`]: the AVX2
//! tier performs exactly the portable loop's arithmetic eight lanes at
//! a time (no FMA contraction — even under `FT_TENSOR_SIMD=fma`, which
//! only affects the GEMM micro-kernel), so results stay bit-identical
//! across tiers; `proptest_simd` pins the equivalence.

use crate::{pool, simd};
#[cfg(target_arch = "x86_64")]
use simd::Kernel;

/// At or above this many elements an in-place kernel fans out over
/// the worker pool; below it, dispatch costs more than it buys on a
/// memory-bound loop.
pub const PAR_ELEMS: usize = 1 << 16;

/// Shares a mutable element pointer with pool tasks that each write a
/// disjoint index range.
struct MutPtr(*mut f32);
// SAFETY: tasks operate on strictly disjoint ranges (enforced by the
// chunking arithmetic in `dispatch`), so concurrent writes never alias.
unsafe impl Send for MutPtr {}
unsafe impl Sync for MutPtr {}

/// Shares a read-only element pointer with pool tasks.
struct ConstPtr(*const f32);
// SAFETY: read-only access from multiple threads is always sound; the
// submitter keeps the referent alive until `parallel_for` returns.
unsafe impl Send for ConstPtr {}
unsafe impl Sync for ConstPtr {}

/// Runs `body(start, end)` over `[0, len)`, split into disjoint ranges
/// across the worker pool for large `len`, inline otherwise. Purely a
/// scheduling decision: `body` must produce identical results for any
/// partition, which holds for every caller here (element-wise math,
/// no cross-element dependencies).
fn dispatch(len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len >= PAR_ELEMS && pool::max_parallelism() > 1 {
        let chunk = len.div_ceil(pool::max_parallelism() * 2).max(1024);
        let tasks = len.div_ceil(chunk);
        pool::parallel_for(tasks, &|t| {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            body(start, end);
        });
    } else {
        body(0, len);
    }
}

/// Reborrows disjoint subranges of the shared pointers as slices.
///
/// # Safety
///
/// `start..end` must be in-bounds for the original allocation and
/// disjoint across concurrently running tasks.
unsafe fn sub_mut<'a>(p: &MutPtr, start: usize, end: usize) -> &'a mut [f32] {
    // SAFETY: in-bounds and exclusive per this fn's contract.
    unsafe { std::slice::from_raw_parts_mut(p.0.add(start), end - start) }
}

/// Shared-slice counterpart of [`sub_mut`].
///
/// # Safety
///
/// `start..end` must be in-bounds for the original allocation; shared
/// reborrows may overlap, but no task may mutate the range.
unsafe fn sub_ref<'a>(p: &ConstPtr, start: usize, end: usize) -> &'a [f32] {
    // SAFETY: in-bounds and unaliased by writers per this fn's contract.
    unsafe { std::slice::from_raw_parts(p.0.add(start), end - start) }
}

/// Shares a read-only `i8` pointer with pool tasks (the quantized
/// update payload).
struct ConstPtrI8(*const i8);
// SAFETY: read-only access from multiple threads is always sound; the
// submitter keeps the referent alive until `parallel_for` returns.
unsafe impl Send for ConstPtrI8 {}
unsafe impl Sync for ConstPtrI8 {}

/// `i8` counterpart of [`sub_ref`].
///
/// # Safety
///
/// `start..end` must be in-bounds for the original allocation; shared
/// reborrows may overlap, but no task may mutate the range.
unsafe fn sub_ref_i8<'a>(p: &ConstPtrI8, start: usize, end: usize) -> &'a [i8] {
    // SAFETY: in-bounds and unaliased by writers per this fn's contract.
    unsafe { std::slice::from_raw_parts(p.0.add(start), end - start) }
}

/// `a[i] += b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "fused add_assign length mismatch");
    let kern = simd::active();
    let (pa, pb) = (MutPtr(a.as_mut_ptr()), ConstPtr(b.as_ptr()));
    dispatch(a.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (a, b) = unsafe { (sub_mut(&pa, s, e), sub_ref(&pb, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::add_assign_avx2(a, b) }
            }
            _ => {
                for (x, &y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
        }
    });
}

/// `a[i] -= b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "fused sub_assign length mismatch");
    let kern = simd::active();
    let (pa, pb) = (MutPtr(a.as_mut_ptr()), ConstPtr(b.as_ptr()));
    dispatch(a.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (a, b) = unsafe { (sub_mut(&pa, s, e), sub_ref(&pb, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::sub_assign_avx2(a, b) }
            }
            _ => {
                for (x, &y) in a.iter_mut().zip(b) {
                    *x -= y;
                }
            }
        }
    });
}

/// `a[i] *= b[i]` (Hadamard).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mul_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "fused mul_assign length mismatch");
    let kern = simd::active();
    let (pa, pb) = (MutPtr(a.as_mut_ptr()), ConstPtr(b.as_ptr()));
    dispatch(a.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (a, b) = unsafe { (sub_mut(&pa, s, e), sub_ref(&pb, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::mul_assign_avx2(a, b) }
            }
            _ => {
                for (x, &y) in a.iter_mut().zip(b) {
                    *x *= y;
                }
            }
        }
    });
}

/// `a[i] *= alpha`.
pub fn scale_assign(a: &mut [f32], alpha: f32) {
    let kern = simd::active();
    let pa = MutPtr(a.as_mut_ptr());
    dispatch(a.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let a = unsafe { sub_mut(&pa, s, e) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::scale_assign_avx2(a, alpha) }
            }
            _ => {
                for x in a {
                    *x *= alpha;
                }
            }
        }
    });
}

/// `a[i] += alpha * b[i]` — the aggregation accumulate primitive.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "fused axpy length mismatch");
    let kern = simd::active();
    let (pa, pb) = (MutPtr(a.as_mut_ptr()), ConstPtr(b.as_ptr()));
    dispatch(a.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (a, b) = unsafe { (sub_mut(&pa, s, e), sub_ref(&pb, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::axpy_avx2(a, alpha, b) }
            }
            _ => {
                for (x, &y) in a.iter_mut().zip(b) {
                    *x += alpha * y;
                }
            }
        }
    });
}

/// `dst[i] = q[i] as f32 * scale` — int8 dequantization into a dense
/// buffer (the wire-format decode for quantized client updates).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dequant_scale(dst: &mut [f32], q: &[i8], scale: f32) {
    assert_eq!(dst.len(), q.len(), "fused dequant_scale length mismatch");
    let kern = simd::active();
    let (pd, pq) = (MutPtr(dst.as_mut_ptr()), ConstPtrI8(q.as_ptr()));
    dispatch(dst.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (dst, q) = unsafe { (sub_mut(&pd, s, e), sub_ref_i8(&pq, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::dequant_scale_avx2(dst, q, scale) }
            }
            _ => {
                for (x, &qv) in dst.iter_mut().zip(q) {
                    *x = qv as f32 * scale;
                }
            }
        }
    });
}

/// `acc[i] += alpha * (q[i] as f32 * scale)` — fused int8
/// dequant-accumulate: folds a quantized client update straight into
/// the running aggregate with no intermediate f32 buffer. The
/// dequantized term is materialized per element (`mul`, `mul`, `add`
/// — no contraction), bit-identical to dequantize-then-[`axpy`].
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dequant_axpy(acc: &mut [f32], alpha: f32, q: &[i8], scale: f32) {
    assert_eq!(acc.len(), q.len(), "fused dequant_axpy length mismatch");
    let kern = simd::active();
    let (pa, pq) = (MutPtr(acc.as_mut_ptr()), ConstPtrI8(q.as_ptr()));
    dispatch(acc.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (acc, q) = unsafe { (sub_mut(&pa, s, e), sub_ref_i8(&pq, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::dequant_axpy_avx2(acc, alpha, q, scale) }
            }
            _ => {
                for (x, &qv) in acc.iter_mut().zip(q) {
                    let t = qv as f32 * scale;
                    *x += alpha * t;
                }
            }
        }
    });
}

/// Fused SGD-with-momentum update, one pass over `p`/`v`/`g`:
///
/// ```text
/// grad = g[i] + weight_decay * p[i]
/// v[i] = momentum * v[i] + grad
/// p[i] -= lr * v[i]
/// ```
///
/// Exactly the arithmetic (and operand order) of the former scalar
/// index loop in `ft_nn::Sgd::step`, without its bounds checks or its
/// two extra passes over the parameter data.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn sgd_momentum_update(
    p: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    momentum: f32,
    weight_decay: f32,
) {
    assert_eq!(p.len(), v.len(), "fused sgd length mismatch (velocity)");
    assert_eq!(p.len(), g.len(), "fused sgd length mismatch (gradient)");
    let (pp, pv, pg) = (
        MutPtr(p.as_mut_ptr()),
        MutPtr(v.as_mut_ptr()),
        ConstPtr(g.as_ptr()),
    );
    let kern = simd::active();
    dispatch(p.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (p, v, g) = unsafe { (sub_mut(&pp, s, e), sub_mut(&pv, s, e), sub_ref(&pg, s, e)) };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::sgd_momentum_avx2(p, v, g, lr, momentum, weight_decay) }
            }
            _ => {
                for ((p, v), &g) in p.iter_mut().zip(v).zip(g) {
                    let grad = g + weight_decay * *p;
                    let vel = momentum * *v + grad;
                    *v = vel;
                    *p -= lr * vel;
                }
            }
        }
    });
}

/// [`sgd_momentum_update`] with the FedProx proximal term folded in:
/// the effective gradient is `g[i] + mu * (p[i] - anchor[i])`,
/// computed from the not-yet-updated `p[i]` exactly as the former
/// materialize-then-step implementation did.
///
/// # Panics
///
/// Panics if slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn prox_sgd_momentum_update(
    p: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    anchor: &[f32],
    mu: f32,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
) {
    assert_eq!(p.len(), v.len(), "fused prox length mismatch (velocity)");
    assert_eq!(p.len(), g.len(), "fused prox length mismatch (gradient)");
    assert_eq!(p.len(), anchor.len(), "fused prox length mismatch (anchor)");
    let (pp, pv, pg, pa) = (
        MutPtr(p.as_mut_ptr()),
        MutPtr(v.as_mut_ptr()),
        ConstPtr(g.as_ptr()),
        ConstPtr(anchor.as_ptr()),
    );
    let kern = simd::active();
    dispatch(p.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (p, v, g, a) = unsafe {
            (
                sub_mut(&pp, s, e),
                sub_mut(&pv, s, e),
                sub_ref(&pg, s, e),
                sub_ref(&pa, s, e),
            )
        };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe {
                    simd::x86::prox_sgd_momentum_avx2(p, v, g, a, mu, lr, momentum, weight_decay)
                }
            }
            _ => {
                for (((p, v), &g), &a) in p.iter_mut().zip(v).zip(g).zip(a) {
                    let adjusted = g + mu * (*p - a);
                    let grad = adjusted + weight_decay * *p;
                    let vel = momentum * *v + grad;
                    *v = vel;
                    *p -= lr * vel;
                }
            }
        }
    });
}

/// Fused server-side Yogi update, one pass over `p`/`m`/`v`/`d`:
/// exactly the arithmetic of the former scalar loop in
/// `ft_nn::Yogi::step`.
///
/// # Panics
///
/// Panics if slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn yogi_update(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    d: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
) {
    assert_eq!(p.len(), m.len(), "fused yogi length mismatch (m)");
    assert_eq!(p.len(), v.len(), "fused yogi length mismatch (v)");
    assert_eq!(p.len(), d.len(), "fused yogi length mismatch (delta)");
    let (pp, pm, pv, pd) = (
        MutPtr(p.as_mut_ptr()),
        MutPtr(m.as_mut_ptr()),
        MutPtr(v.as_mut_ptr()),
        ConstPtr(d.as_ptr()),
    );
    let kern = simd::active();
    dispatch(p.len(), &|s, e| {
        // SAFETY: ranges are disjoint and in-bounds (dispatch contract).
        let (p, m, v, d) = unsafe {
            (
                sub_mut(&pp, s, e),
                sub_mut(&pm, s, e),
                sub_mut(&pv, s, e),
                sub_ref(&pd, s, e),
            )
        };
        match kern {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 | Kernel::Avx2Fma => {
                // SAFETY: `simd::active` only returns supported tiers.
                unsafe { simd::x86::yogi_avx2(p, m, v, d, lr, beta1, beta2, eps) }
            }
            _ => {
                for (((p, m), v), &g) in p.iter_mut().zip(m).zip(v).zip(d) {
                    let mi = beta1 * *m + (1.0 - beta1) * g;
                    let g2 = g * g;
                    let vi = *v - (1.0 - beta2) * g2 * (*v - g2).signum();
                    *m = mi;
                    *v = vi;
                    *p += lr * mi / (vi.sqrt() + eps);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_matches_scalar_loop() {
        let mut a: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..100).map(|i| i as f32 * -0.25).collect();
        let mut expect = a.clone();
        for (x, &y) in expect.iter_mut().zip(&b) {
            *x += y;
        }
        add_assign(&mut a, &b);
        assert_eq!(a, expect);
    }

    #[test]
    fn empty_slices_are_no_ops() {
        add_assign(&mut [], &[]);
        sub_assign(&mut [], &[]);
        mul_assign(&mut [], &[]);
        scale_assign(&mut [], 2.0);
        axpy(&mut [], 1.0, &[]);
        sgd_momentum_update(&mut [], &mut [], &[], 0.1, 0.9, 0.0);
    }

    #[test]
    fn sgd_update_matches_reference_loop() {
        let n = 257;
        let mut p: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut v: Vec<f32> = (0..n).map(|i| (i as f32).cos() * 0.1).collect();
        let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        let (lr, mom, wd) = (0.05f32, 0.9f32, 0.01f32);
        let (mut rp, mut rv) = (p.clone(), v.clone());
        for i in 0..n {
            let grad = g[i] + wd * rp[i];
            let vel = mom * rv[i] + grad;
            rv[i] = vel;
            rp[i] -= lr * vel;
        }
        sgd_momentum_update(&mut p, &mut v, &g, lr, mom, wd);
        assert_eq!(p, rp);
        assert_eq!(v, rv);
    }

    #[test]
    fn large_parallel_sizes_match_serial() {
        // Straddle PAR_ELEMS: the parallel partition must be invisible.
        for n in [PAR_ELEMS - 1, PAR_ELEMS, PAR_ELEMS + 17] {
            let mut a: Vec<f32> = (0..n).map(|i| (i % 113) as f32 * 0.3).collect();
            let b: Vec<f32> = (0..n).map(|i| (i % 97) as f32 - 48.0).collect();
            let mut expect = a.clone();
            for (x, &y) in expect.iter_mut().zip(&b) {
                *x += 0.5 * y;
            }
            axpy(&mut a, 0.5, &b);
            assert_eq!(a, expect, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        add_assign(&mut [1.0], &[1.0, 2.0]);
    }
}
