//! Dense `f32` tensor substrate for the FedTrans reproduction.
//!
//! The FedTrans paper trains neural networks whose layers are inspected,
//! widened, deepened, cropped, and averaged by the federated-learning
//! runtime. All of those operations need direct access to parameter
//! buffers, so this crate provides a deliberately small, fully owned,
//! row-major tensor type instead of binding to an external framework.
//!
//! # Example
//!
//! ```
//! use ft_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), ft_tensor::TensorError>(())
//! ```

// The raw-pointer kernels must spell out every unsafe operation; docs
// are part of the public contract (ft-lint S001 enforces the SAFETY
// comments themselves).
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

mod error;
pub mod fused;
mod init;
mod matmul;
mod ops;
pub mod pool;
pub mod scratch;
mod shape;
pub mod simd;
mod tensor;
pub mod tune;

pub use error::TensorError;
pub use init::{he_normal, uniform, xavier_uniform};
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;

/// Convenience alias for results produced by tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod smoke {
    use super::Tensor;

    #[test]
    fn core_type_constructs_and_round_trips() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
        let through_identity = t.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(through_identity, t);
    }
}
