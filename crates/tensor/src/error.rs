use std::fmt;

/// Error raised by tensor operations.
///
/// Every fallible operation in this crate reports one of these variants;
/// they carry enough context (the offending shapes or indices) to debug a
/// failed model-surgery step without a stack trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count of the provided buffer does not match the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors were expected to share a shape but do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// `[rows, cols]` of the left matrix.
        left: Vec<usize>,
        /// `[rows, cols]` of the right matrix.
        right: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// An index was outside the valid range for an axis.
    IndexOutOfBounds {
        /// The axis being indexed.
        axis: usize,
        /// The offending index.
        index: usize,
        /// The length of the axis.
        len: usize,
    },
    /// A reshape changed the total number of elements.
    ReshapeMismatch {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the target shape.
        to: usize,
    },
    /// An operation that requires a non-empty tensor received an empty one.
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::MatmulDimMismatch { left, right } => {
                write!(f, "matmul inner dimension mismatch: {left:?} x {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected tensor of rank {expected}, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { axis, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for axis {axis} of length {len}"
                )
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape tensor of {from} elements into {to} elements"
                )
            }
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}
