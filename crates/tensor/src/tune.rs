//! One-shot startup autotune for the GEMM cache-block sizes.
//!
//! The micro-kernel's register tile (`MR × NR`) is fixed, but the two
//! outer block sizes are host-dependent: `KC` bounds the `KC × NR` B
//! slab that must stay L1-resident across every row tile of a panel,
//! and `MC` bounds the packed A block that must stay L2-resident
//! across every column window of a k-block. [`config`] picks both once
//! per process from the host cache hierarchy (Linux sysfs), from an
//! explicit `FT_TENSOR_TUNE=mc,kc` override, or from conservative
//! defaults when neither is available.
//!
//! # Digest neutrality
//!
//! Block sizes are *digest-neutral by construction*: blocking decides
//! which `(i, j, k-range)` sub-problems run when, never the arithmetic
//! inside one. Every output element still accumulates its dot product
//! in ascending-`k` order with a single `f32` accumulator — a k-block
//! boundary merely round-trips that accumulator through an exact `f32`
//! store in `out` — so any `(mc, kc)` choice produces bit-identical
//! results, which `proptest_simd` pins by sweeping tile sizes. That is
//! what makes a *measured* (host-varying) tune safe in a bit-exact
//! system: the measurement picks speed, never values.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard upper bound on `kc`: keeps the stack-allocated B slab
/// (`KC_MAX × NR × 4` bytes = 16 KiB) a compile-time constant, which
/// is what lets LLVM hoist the micro-kernel's bounds checks (PR 5
/// measured 7x from exactly this property).
pub const KC_MAX: usize = 512;
/// Lower bound on `kc`: below this the per-block packing overhead
/// dominates the k-loop it feeds.
pub const KC_MIN: usize = 32;
/// Bounds on `mc` (rows of packed A per L2 block).
const MC_MIN: usize = 32;
const MC_MAX: usize = 4096;

/// Where the active tile configuration came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneSource {
    /// Explicit `FT_TENSOR_TUNE=mc,kc` override.
    Env,
    /// Derived from the host cache sizes reported by sysfs.
    CacheProbe,
    /// Fallback constants (non-Linux hosts, unreadable sysfs).
    Default,
}

impl TuneSource {
    /// Stable lowercase name used in bench emitters and logs.
    pub fn name(self) -> &'static str {
        match self {
            TuneSource::Env => "env",
            TuneSource::CacheProbe => "cache-probe",
            TuneSource::Default => "default",
        }
    }
}

/// The autotuned GEMM block sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneConfig {
    /// Rows of packed A per L2-resident block (multiple of `MR`).
    pub mc: usize,
    /// Depth of one k-block; the B slab is `kc × NR` (multiple of 8,
    /// at most [`KC_MAX`]).
    pub kc: usize,
    /// Provenance, surfaced in bench emitters so regressions stay
    /// attributable when the tune differs across hosts.
    pub source: TuneSource,
}

/// Tile sizes used when no cache information is available — the
/// pre-autotune constants (`KC = 128` kept an 8 KiB slab safely inside
/// any 32 KiB L1d alongside the A and C streams).
const DEFAULT: TuneConfig = TuneConfig {
    mc: 256,
    kc: 128,
    source: TuneSource::Default,
};

/// Derives `kc` from the L1 data-cache size: the B slab gets about an
/// eighth of L1d (`kc × NR × 4` bytes), leaving the rest for the A
/// micro-panel stream, the C tile, and whatever else the core touches.
/// 32 KiB → 128 (the historical default); 48 KiB → 192.
fn kc_for_l1d(l1d_bytes: usize) -> usize {
    let raw = (l1d_bytes / 8) / (crate::matmul::NR * 4);
    (raw / 8 * 8).clamp(KC_MIN, KC_MAX)
}

/// Derives `mc` from the L2 size and the chosen `kc`: the packed A
/// block (`mc × kc × 4` bytes) gets about a quarter of L2, leaving
/// room for the B panel traffic and the output. 1 MiB L2, kc = 128 →
/// mc = 512.
fn mc_for_l2(l2_bytes: usize, kc: usize) -> usize {
    let raw = (l2_bytes / 4) / (kc * 4);
    (raw / crate::matmul::MR * crate::matmul::MR).clamp(MC_MIN, MC_MAX)
}

/// Parses a sysfs cache size string like `"48K"` or `"2048K"` into
/// bytes.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// Reads `(l1d_bytes, l2_bytes)` for cpu0 from sysfs. Any missing or
/// malformed entry yields `None` for that level.
fn probe_caches() -> (Option<usize>, Option<usize>) {
    let (mut l1d, mut l2) = (None, None);
    let base = "/sys/devices/system/cpu/cpu0/cache";
    for idx in 0..8 {
        let dir = format!("{base}/index{idx}");
        let read = |leaf: &str| std::fs::read_to_string(format!("{dir}/{leaf}")).ok();
        let (Some(level), Some(ty)) = (read("level"), read("type")) else {
            continue;
        };
        let size = read("size").and_then(|s| parse_cache_size(&s));
        match (level.trim(), ty.trim()) {
            ("1", "Data") => l1d = size,
            ("2", "Unified") => l2 = size,
            _ => {}
        }
    }
    (l1d, l2)
}

/// Parses the `FT_TENSOR_TUNE=mc,kc` override. Values are clamped to
/// the same bounds the probe respects — in particular `kc` can never
/// exceed [`KC_MAX`], because the B slab's stack extent is fixed at
/// compile time.
fn parse_env(spec: &str) -> Option<TuneConfig> {
    let mut it = spec.split(',');
    let mc = it.next()?.trim().parse::<usize>().ok()?;
    let kc = it.next()?.trim().parse::<usize>().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(TuneConfig {
        mc: (mc / crate::matmul::MR * crate::matmul::MR).clamp(MC_MIN, MC_MAX),
        kc: (kc / 8 * 8).clamp(KC_MIN, KC_MAX),
        source: TuneSource::Env,
    })
}

/// Pure decision behind [`config`], separated for unit tests.
fn decide(env: Option<&str>, l1d: Option<usize>, l2: Option<usize>) -> TuneConfig {
    if let Some(cfg) = env.and_then(parse_env) {
        return cfg;
    }
    match (l1d, l2) {
        (Some(l1d), l2) => {
            let kc = kc_for_l1d(l1d);
            TuneConfig {
                mc: mc_for_l2(l2.unwrap_or(1024 * 1024), kc),
                kc,
                source: TuneSource::CacheProbe,
            }
        }
        _ => DEFAULT,
    }
}

/// The process-wide tile configuration, computed once on first use
/// (reads `FT_TENSOR_TUNE`, then sysfs, then falls back to
/// [`TuneSource::Default`] constants).
pub fn config() -> TuneConfig {
    static CONFIG: OnceLock<TuneConfig> = OnceLock::new();
    *CONFIG.get_or_init(|| {
        let env = std::env::var("FT_TENSOR_TUNE").ok();
        let (l1d, l2) = probe_caches();
        decide(env.as_deref(), l1d, l2)
    })
}

/// Test/bench override slots: 0 = unforced.
static FORCED_MC: AtomicUsize = AtomicUsize::new(0);
static FORCED_KC: AtomicUsize = AtomicUsize::new(0);

/// Overrides the tile configuration for subsequent [`active`] calls
/// (`None` restores the autotuned [`config`]). A test/bench hook in
/// the spirit of [`crate::simd::force`]: the equivalence proptests use
/// it to sweep `(mc, kc)` and pin that every choice produces
/// bit-identical GEMM results. Values are clamped exactly like the
/// `FT_TENSOR_TUNE` override — `kc` can never exceed [`KC_MAX`].
pub fn force(cfg: Option<(usize, usize)>) {
    match cfg {
        None => {
            FORCED_MC.store(0, Ordering::SeqCst);
            FORCED_KC.store(0, Ordering::SeqCst);
        }
        Some((mc, kc)) => {
            let mc = (mc / crate::matmul::MR * crate::matmul::MR).clamp(MC_MIN, MC_MAX);
            let kc = (kc / 8 * 8).clamp(KC_MIN, KC_MAX);
            FORCED_MC.store(mc, Ordering::SeqCst);
            FORCED_KC.store(kc, Ordering::SeqCst);
        }
    }
}

/// The tile configuration the GEMM core uses for this call: the
/// [`force`] override when set, otherwise the cached [`config`].
pub fn active() -> TuneConfig {
    let (mc, kc) = (
        FORCED_MC.load(Ordering::SeqCst),
        FORCED_KC.load(Ordering::SeqCst),
    );
    if mc != 0 && kc != 0 {
        TuneConfig {
            mc,
            kc,
            source: TuneSource::Env,
        }
    } else {
        config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cache_size_handles_sysfs_forms() {
        assert_eq!(parse_cache_size("48K\n"), Some(48 * 1024));
        assert_eq!(parse_cache_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("4M"), Some(4 * 1024 * 1024));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("banana"), None);
        assert_eq!(parse_cache_size(""), None);
    }

    #[test]
    fn kc_matches_historical_default_on_32k_l1() {
        assert_eq!(kc_for_l1d(32 * 1024), 128);
        assert_eq!(kc_for_l1d(48 * 1024), 192);
        // Tiny and huge caches hit the clamps.
        assert_eq!(kc_for_l1d(1024), KC_MIN);
        assert_eq!(kc_for_l1d(1 << 24), KC_MAX);
    }

    #[test]
    fn mc_scales_with_l2_and_divides_by_kc() {
        assert_eq!(mc_for_l2(1024 * 1024, 128), 512);
        assert_eq!(mc_for_l2(2048 * 1024, 192), 680);
        assert!(mc_for_l2(1 << 30, 32) <= 4096);
        assert!(mc_for_l2(4096, 512) >= 32);
    }

    #[test]
    fn env_override_wins_and_is_clamped() {
        let cfg = decide(Some("512,256"), Some(32 * 1024), Some(1 << 20));
        assert_eq!((cfg.mc, cfg.kc, cfg.source), (512, 256, TuneSource::Env));
        // kc can never exceed the compile-time slab bound.
        let cfg = decide(Some("100000,100000"), None, None);
        assert_eq!((cfg.mc, cfg.kc), (4096, KC_MAX));
        // Non-multiples round down to the tile grid.
        let cfg = decide(Some("66,67"), None, None);
        assert_eq!((cfg.mc, cfg.kc), (64, 64));
    }

    #[test]
    fn malformed_env_falls_through_to_probe_or_default() {
        let cfg = decide(Some("banana"), Some(32 * 1024), Some(1 << 20));
        assert_eq!(cfg.source, TuneSource::CacheProbe);
        assert_eq!((cfg.mc, cfg.kc), (512, 128));
        let cfg = decide(Some("1,2,3"), None, None);
        assert_eq!(cfg, DEFAULT);
    }

    #[test]
    fn no_cache_info_yields_the_default() {
        let cfg = decide(None, None, None);
        assert_eq!(cfg, DEFAULT);
        assert_eq!(cfg.source.name(), "default");
    }

    #[test]
    fn probe_missing_l2_assumes_a_megabyte() {
        let cfg = decide(None, Some(32 * 1024), None);
        assert_eq!((cfg.mc, cfg.kc), (512, 128));
        assert_eq!(cfg.source, TuneSource::CacheProbe);
    }

    #[test]
    fn force_overrides_clamped_then_restores() {
        force(Some((100, 100000)));
        let cfg = active();
        assert_eq!((cfg.mc, cfg.kc), (100, KC_MAX));
        force(None);
        assert_eq!(active(), config());
    }

    #[test]
    fn process_config_is_stable_and_in_bounds() {
        let a = config();
        let b = config();
        assert_eq!(a, b);
        assert!(a.kc >= KC_MIN && a.kc <= KC_MAX && a.kc.is_multiple_of(8));
        assert!(a.mc >= MC_MIN && a.mc <= MC_MAX && a.mc.is_multiple_of(crate::matmul::MR));
    }
}
