//! Personalization study: which clients benefit from which model?
//!
//! Runs FedTrans on a workload with a wide spread of per-client task
//! difficulty, then cross-evaluates every model on every client to
//! show the paper's core observation (Fig. 1b): easy clients peak on
//! small models, hard clients need the capacity FedTrans grew — and
//! the utility-based assignment tracks that structure without ever
//! looking at client data.
//!
//! Run: `cargo run --release --example personalization_study`

use fedtrans::{ClientManager, FedTransConfig, FedTransRuntime};
use ft_baselines::eval_on_client;
use ft_data::DatasetConfig;
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::DeviceTraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetConfig::femnist_like()
        .with_num_clients(40)
        .with_max_difficulty(0.8)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(data.num_clients())
        .with_base_capacity(800)
        .with_disparity(30.0)
        .generate();

    let cfg = FedTransConfig::default()
        .with_clients_per_round(10)
        .with_gamma(4)
        .with_delta(4);
    let mut runtime = FedTransRuntime::new(cfg, data.clone(), devices.clone())?;
    let report = drive(&mut runtime, 60, &RoundOptions::from_env())?;
    let models = runtime.models();
    println!("grew {} models: {:?}\n", models.len(), report.model_archs);

    // Cross-evaluate: per client, accuracy on every model.
    println!("difficulty | best model (oracle) | assigned | per-model accuracy");
    let mut assigned_match = 0usize;
    let macs = report.model_macs.clone();
    for c in 0..data.num_clients() {
        let accs: Vec<f32> = models
            .iter()
            .map(|m| eval_on_client(m, data.client(c)))
            .collect();
        let oracle = accs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let assigned = report.per_client_model[c];
        let compat = ClientManager::compatible_models(&macs, devices.profile(c).capacity_macs);
        if accs[assigned] >= accs[oracle] - 0.05 {
            assigned_match += 1;
        }
        if c % 8 == 0 {
            let acc_str: Vec<String> = accs.iter().map(|a| format!("{a:.2}")).collect();
            println!(
                "   {:.2}    |        M{oracle}           |    M{assigned}   | [{}] ({} compatible)",
                data.client(c).difficulty(),
                acc_str.join(", "),
                compat.len(),
            );
        }
    }
    println!(
        "\nutility assignment within 5% of the per-client oracle for {assigned_match}/{} clients",
        data.num_clients()
    );
    Ok(())
}
