//! Heterogeneous fleet: why one model cannot serve every device.
//!
//! The scenario from the paper's introduction: a fleet of phones whose
//! compute capacity spans ~30x. This example (1) shows the inference
//! latency a single large model would impose on the weak half of the
//! fleet, (2) runs FedTrans, and (3) shows how the grown model suite
//! maps onto capacity tiers, with each client served within budget.
//!
//! Run: `cargo run --release --example heterogeneous_fleet`

use fedtrans::{ClientManager, FedTransConfig, FedTransRuntime};
use ft_data::DatasetConfig;
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::DeviceTraceConfig;
use ft_fedsim::metrics::box_stats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetConfig::cifar_like().with_num_clients(50).generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(data.num_clients())
        .with_base_capacity(40_000)
        .with_disparity(30.0)
        .generate();

    // (1) A one-size-fits-all model sized for the BIG devices.
    let big_macs = devices.max_capacity();
    let latencies: Vec<f32> = (0..devices.len())
        .map(|c| devices.profile(c).inference_latency_ms(big_macs) as f32)
        .collect();
    let stats = box_stats(&latencies);
    println!("single large model ({big_macs} MACs): inference latency");
    println!(
        "  median {:.1} ms, p75 {:.1} ms, worst {:.1} ms",
        stats.median, stats.q3, stats.max
    );
    let incompatible = (0..devices.len())
        .filter(|&c| !devices.profile(c).is_compatible(big_macs))
        .count();
    println!(
        "  {incompatible}/{} devices cannot run it at all",
        devices.len()
    );

    // (2) FedTrans grows a suite instead.
    let cfg = FedTransConfig::default()
        .with_clients_per_round(10)
        .with_gamma(4)
        .with_delta(4);
    let mut runtime = FedTransRuntime::new(cfg, data, devices.clone())?;
    let report = drive(&mut runtime, 60, &RoundOptions::from_env())?;

    // (3) Capacity tiers vs assigned models.
    println!("\nFedTrans model suite:");
    for (i, (arch, macs)) in report
        .model_archs
        .iter()
        .zip(&report.model_macs)
        .enumerate()
    {
        println!("  M{i}: {arch} ({macs} MACs)");
    }
    println!("\nclient capacity -> assigned model (sample of 10):");
    for c in (0..devices.len()).step_by(devices.len() / 10) {
        let cap = devices.profile(c).capacity_macs;
        let model = report.per_client_model[c];
        let compatible = ClientManager::compatible_models(&report.model_macs, cap).len();
        println!(
            "  client {c:>3}: capacity {cap:>8} MACs, {compatible} compatible models, serves M{model} (acc {:.2})",
            report.per_client_accuracy[c]
        );
    }
    // Every assignment respects the budget.
    let violations = (0..devices.len())
        .filter(|&c| {
            let cap = devices.profile(c).capacity_macs;
            let compat = ClientManager::compatible_models(&report.model_macs, cap);
            // The fallback rule may assign the cheapest model even when
            // nothing fits; count only genuine violations.
            let m = report.per_client_model[c];
            report.model_macs[m] > cap && compat.len() > 1
        })
        .count();
    println!("\ncapacity violations: {violations}");
    Ok(())
}
