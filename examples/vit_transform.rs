//! ViT transformation: FedTrans is not conv-specific (paper Table 4).
//!
//! Builds a one-block attention model, demonstrates function-preserving
//! widen (MLP width) and deepen (identity attention block) directly,
//! then runs federated training on token inputs.
//!
//! Run: `cargo run --release --example vit_transform`

use fedtrans::{FedTransConfig, FedTransRuntime};
use ft_data::DatasetConfig;
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::DeviceTraceConfig;
use ft_model::{deepen_cell, widen_cell, CellModel};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // (1) Manual surgery on a ViT: the transforms preserve the function.
    let mut vit = CellModel::vit(&mut rng, 8, 8, 1, 16, 16);
    let x = ft_tensor::uniform(&mut rng, &[4, 64], -1.0, 1.0);
    let before = vit.forward(&x)?;

    let mut widened = widen_cell(&vit, 0, 2.0, &mut rng)?;
    let after_widen = widened.forward(&x)?;
    let widen_drift: f32 = before
        .data()
        .iter()
        .zip(after_widen.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    println!(
        "widen MLP 16 -> 32: params {} -> {}, max output drift {widen_drift:.2e}",
        vit.param_count(),
        widened.param_count()
    );

    let mut deepened = deepen_cell(&widened, 0, 1, &mut rng)?;
    let after_deepen = deepened.forward(&x)?;
    let deepen_drift: f32 = after_widen
        .data()
        .iter()
        .zip(after_deepen.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    println!(
        "deepen 1 -> 2 blocks: params {} -> {}, max output drift {deepen_drift:.2e}",
        widened.param_count(),
        deepened.param_count()
    );

    // (2) Federated training with attention cells end to end.
    let data = DatasetConfig::femnist_vit_like()
        .with_num_clients(30)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(data.num_clients())
        .with_base_capacity(60_000)
        .with_disparity(30.0)
        .generate();
    let cfg = FedTransConfig::default()
        .with_clients_per_round(8)
        .with_gamma(3)
        .with_delta(3);
    let mut runtime = FedTransRuntime::new(cfg, data, devices)?;
    let report = drive(&mut runtime, 30, &RoundOptions::from_env())?;
    println!("\nfederated ViT after 30 rounds:");
    for arch in &report.model_archs {
        println!("  {arch}");
    }
    println!(
        "mean per-client accuracy: {:.3}",
        report.final_accuracy.mean
    );
    Ok(())
}
