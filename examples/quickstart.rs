//! Quickstart: train FedTrans on a small synthetic federated workload.
//!
//! Demonstrates the three-line happy path — generate data, generate a
//! device trace, run the FedTrans coordinator — and prints the model
//! suite FedTrans grew plus the final per-client accuracy summary.
//!
//! Run: `cargo run --release --example quickstart`

use fedtrans::{FedTransConfig, FedTransRuntime};
use ft_data::DatasetConfig;
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::DeviceTraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A FEMNIST-like federated dataset: 60 clients, Dirichlet label
    // skew, heterogeneous per-client difficulty.
    let data = DatasetConfig::femnist_like()
        .with_num_clients(60)
        .with_seed(7)
        .generate();

    // A device population with ~30x compute disparity, like the
    // FedScale trace the paper samples from.
    let devices = DeviceTraceConfig::default()
        .with_num_devices(data.num_clients())
        .with_base_capacity(1_000)
        .with_disparity(30.0)
        .generate();
    println!(
        "devices: {} clients, {:.0}x capacity disparity",
        devices.len(),
        devices.capacity_disparity()
    );

    // FedTrans with paper-default hyperparameters, scaled-down DoC
    // windows for a short run.
    let cfg = FedTransConfig::default()
        .with_clients_per_round(12)
        .with_gamma(4)
        .with_delta(4);
    let mut runtime = FedTransRuntime::new(cfg, data, devices)?;
    let report = drive(&mut runtime, 50, &RoundOptions::from_env())?;

    println!("\nmodel suite after 50 rounds:");
    for (arch, macs) in report.model_archs.iter().zip(&report.model_macs) {
        println!("  {arch}  ({macs} MACs/sample)");
    }
    println!("\nfinal per-client accuracy:");
    println!("  mean   {:.3}", report.final_accuracy.mean);
    println!("  median {:.3}", report.final_accuracy.median);
    println!("  IQR    {:.3}", report.final_accuracy.iqr());
    println!("\ntotal training cost: {:.3e} MACs", report.pmacs * 1e15);
    println!("network volume:      {:.2} MB", report.network_mb);
    Ok(())
}
