//! `ft-run` — the scenario harness CLI.
//!
//! Runs one canned or user-supplied scenario deterministically, writes
//! its JSON report to the workspace `bench_results/` directory, and
//! optionally checks (or regenerates) the committed golden digests the
//! CI scenario matrix gates on.
//!
//! ```text
//! ft-run --list
//! ft-run --scenario dirichlet-skew --quick
//! ft-run --config my_scenario.json --rounds 100
//! ft-run --scenario high-dropout --quick --check-golden
//! ft-run --scenario iid-small --quick --checkpoint ck.json --stop-after-round 4
//! ft-run --scenario iid-small --quick --checkpoint ck.json   # resumes
//! ft-run --update-goldens
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use ft_harness::{registry, run_scenario, RunOptions, Scenario};

struct Args {
    scenario: Option<String>,
    config: Option<PathBuf>,
    list: bool,
    quick: bool,
    rounds: Option<usize>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    stop_after: Option<usize>,
    check_golden: bool,
    update_goldens: bool,
    out: Option<String>,
}

const USAGE: &str = "ft-run — config-driven scenario harness

USAGE:
    ft-run --list
    ft-run --scenario <name> [options]
    ft-run --config <scenario.json> [options]
    ft-run --update-goldens

OPTIONS:
    --list                  list canned scenarios and exit
    --scenario <name>       run a canned scenario by name
    --config <file>         run a scenario described by a JSON file
    --quick                 quick (CI) round budget; also FT_SCENARIO_QUICK=1
    --rounds <n>            override the round budget
    --checkpoint <file>     resume from <file> if present; checkpoint there
    --checkpoint-every <n>  write a checkpoint every n rounds (default 0)
    --stop-after-round <n>  stop and checkpoint after n rounds (kill injection)
    --check-golden          compare the quick-mode digest against goldens.json
    --update-goldens        re-run every canned scenario (quick) and rewrite
                            goldens.json
    --out <name>            report artifact name (default scenario-<name>)
    --help                  print this help

ENVIRONMENT:
    FT_CLIENT_THREADS / FT_TENSOR_THREADS control parallelism and never
    change a report byte; FT_ARTIFACT_DIR overrides the report
    directory. FT_RENDEZVOUS_DEADLINE_S / FT_HEARTBEAT_INTERVAL_S /
    FT_HEARTBEAT_DEADLINE_S tune the coordinator protocol's timing (a
    healthy fleet's report is invariant to them). Full table:
    README.md#environment-variables";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        config: None,
        list: false,
        quick: false,
        rounds: None,
        checkpoint: None,
        checkpoint_every: 0,
        stop_after: None,
        check_golden: false,
        update_goldens: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--list" => args.list = true,
            "--quick" => args.quick = true,
            "--check-golden" => args.check_golden = true,
            "--update-goldens" => args.update_goldens = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--rounds" => {
                args.rounds = Some(
                    value("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?,
                );
            }
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--stop-after-round" => {
                args.stop_after = Some(
                    value("--stop-after-round")?
                        .parse()
                        .map_err(|e| format!("--stop-after-round: {e}"))?,
                );
            }
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn load_scenario(args: &Args) -> Result<Scenario, String> {
    if let Some(name) = &args.scenario {
        return registry::find(name).ok_or_else(|| {
            let known: Vec<String> = registry::canned().into_iter().map(|s| s.name).collect();
            format!(
                "unknown scenario `{name}`; canned scenarios: {}",
                known.join(", ")
            )
        });
    }
    if let Some(path) = &args.config {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let scenario: Scenario =
            serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        scenario.validate()?;
        return Ok(scenario);
    }
    Err("pass --scenario <name>, --config <file>, --list, or --update-goldens".to_owned())
}

fn list_scenarios() {
    println!(
        "{:<20} {:<10} {:>6} {:>6}  description",
        "name", "method", "rounds", "quick"
    );
    for s in registry::canned() {
        let method = match s.build() {
            Ok(d) => d.name(),
            Err(_) => "?",
        };
        println!(
            "{:<20} {:<10} {:>6} {:>6}  {}",
            s.name, method, s.rounds, s.quick_rounds, s.description
        );
    }
}

fn update_goldens() -> Result<(), String> {
    let mut goldens = BTreeMap::new();
    for scenario in registry::canned() {
        let outcome = run_scenario(
            &scenario,
            &RunOptions {
                quick: true,
                ..Default::default()
            },
        )
        .map_err(|e| format!("{}: {e}", scenario.name))?;
        let digest = outcome.digest.expect("finished run has a digest");
        println!("{:<20} {digest}", scenario.name);
        goldens.insert(scenario.name.clone(), digest);
    }
    registry::save_goldens(&goldens).map_err(|e| e.to_string())?;
    println!("wrote {}", registry::goldens_path().display());
    Ok(())
}

fn run(args: &Args) -> Result<bool, String> {
    let scenario = load_scenario(args)?;
    let opts = RunOptions {
        quick: args.quick,
        rounds_override: args.rounds,
        checkpoint_path: args.checkpoint.clone(),
        checkpoint_every: args.checkpoint_every,
        stop_after: args.stop_after,
    };
    let quick = opts.quick_mode();
    let outcome = run_scenario(&scenario, &opts).map_err(|e| e.to_string())?;

    if let Some(from) = outcome.resumed_from {
        println!("resumed `{}` from round {from}", outcome.scenario);
    }
    if !outcome.finished() {
        println!(
            "stopped `{}` at round {}/{} (checkpoint written)",
            outcome.scenario, outcome.rounds_completed, outcome.target_rounds
        );
        return Ok(true);
    }

    let report = outcome.report.as_ref().expect("finished");
    let digest = outcome.digest.as_ref().expect("finished");
    let artifact = args
        .out
        .clone()
        .unwrap_or_else(|| format!("scenario-{}", outcome.scenario));
    let path = ft_fedsim::report::dump_json(&artifact, report);
    println!(
        "scenario   {} ({} mode)\nmethod     {}\nrounds     {}\nmean acc   {:.4}\npmacs      {:.3e}\nnetwork    {:.2} MB\ndigest     {digest}",
        outcome.scenario,
        if quick { "quick" } else { "full" },
        outcome.algorithm,
        outcome.rounds_completed,
        report.final_accuracy.mean,
        report.pmacs,
        report.network_mb,
    );
    if let Some(p) = path {
        println!("report     {}", p.display());
    }

    if args.check_golden {
        if !quick || args.rounds.is_some() {
            return Err("--check-golden only applies to unmodified quick-mode runs".to_owned());
        }
        let goldens = registry::load_goldens().map_err(|e| e.to_string())?;
        match goldens.get(&outcome.scenario) {
            Some(expected) if expected == digest => {
                println!("golden     ok ({expected})");
            }
            Some(expected) => {
                eprintln!(
                    "golden     DRIFT: expected {expected}, got {digest}\n\
                     If the change is intentional, regenerate with `ft-run --update-goldens`."
                );
                return Ok(false);
            }
            None => {
                eprintln!(
                    "golden     MISSING for `{}`; run `ft-run --update-goldens`",
                    outcome.scenario
                );
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        list_scenarios();
        return ExitCode::SUCCESS;
    }
    if args.update_goldens {
        return match update_goldens() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
