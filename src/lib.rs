//! Root facade of the FedTrans reproduction workspace.
//!
//! Re-exports the crates a downstream user is expected to touch:
//! [`fedtrans`] (the method), [`ft_fedsim`] (the simulator substrate:
//! the [`ft_fedsim::Algorithm`] trait plus the message-driven
//! [`ft_fedsim::coordinator`] whose [`ft_fedsim::coordinator::drive`]
//! loop runs every method), and [`ft_harness`] (the config-driven
//! scenario system behind the `ft-run` CLI). The remaining crates are
//! implementation layers; see `docs/ARCHITECTURE.md` for the full
//! crate map, the coordinator state machine, the dataflow of one
//! round, and the determinism contract.
//!
//! This package also hosts the cross-crate integration tests
//! (`tests/`), the runnable examples (`examples/`), and the `ft-run`
//! binary (`src/bin/ft-run.rs`).
#![allow(unused_imports)]
pub use fedtrans;
pub use ft_fedsim;
pub use ft_harness;

#[cfg(test)]
mod smoke {
    #[test]
    fn facade_reexports_the_fedtrans_api() {
        let cfg = fedtrans::FedTransConfig::default();
        assert!(cfg.clients_per_round > 0);
    }
}
