//! Root library: re-exports the workspace public API.
#![allow(unused_imports)]
pub use fedtrans;

#[cfg(test)]
mod smoke {
    #[test]
    fn facade_reexports_the_fedtrans_api() {
        let cfg = fedtrans::FedTransConfig::default();
        assert!(cfg.clients_per_round > 0);
    }
}
