//! Root library: re-exports the workspace public API.
#![allow(unused_imports)]
pub use fedtrans;
