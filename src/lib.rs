//! Root facade of the FedTrans reproduction workspace.
//!
//! Re-exports the crates a downstream user is expected to touch:
//! [`fedtrans`] (the method), [`ft_fedsim`] (the simulator substrate:
//! the [`ft_fedsim::Algorithm`] trait plus the message-driven
//! [`ft_fedsim::coordinator`] whose [`ft_fedsim::coordinator::drive`]
//! loop runs every method), and [`ft_harness`] (the config-driven
//! scenario system behind the `ft-run` CLI). The streaming
//! aggregation surface — [`UpdateSink`] and the [`FedAvgSink`] fold
//! it ships with — is re-exported at this root because it is the one
//! extension point every aggregation strategy implements. The
//! remaining crates are implementation layers; see
//! `docs/ARCHITECTURE.md` for the full crate map, the coordinator
//! state machine, the dataflow of one round, and the determinism
//! contract.
//!
//! This package also hosts the cross-crate integration tests
//! (`tests/`), the runnable examples (`examples/`), and the `ft-run`
//! binary (`src/bin/ft-run.rs`).
#![allow(unused_imports)]
pub use fedtrans;
pub use ft_fedsim;
pub use ft_fedsim::{ClientUpdate, FedAvgSink, RoundManifest, TaskSpec, UpdateSink};
pub use ft_harness;

#[cfg(test)]
mod smoke {
    #[test]
    fn facade_reexports_the_fedtrans_api() {
        let cfg = fedtrans::FedTransConfig::default();
        assert!(cfg.clients_per_round > 0);
    }

    #[test]
    fn facade_reexports_the_streaming_sink_api() {
        // The trait and its stock fold are reachable without naming
        // ft_fedsim: an empty round folds to no average.
        let mut sink: Box<dyn crate::UpdateSink> = Box::new(crate::FedAvgSink::single());
        sink.begin_round(&crate::RoundManifest {
            round: 0,
            tasks: &[],
        })
        .unwrap();
        sink.finish().unwrap();
    }
}
