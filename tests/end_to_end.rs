//! Cross-crate integration tests: full FedTrans runs over every model
//! family, reproducibility, and report well-formedness.

use fedtrans::{FedTransConfig, FedTransRuntime};
use ft_data::DatasetConfig;
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::DeviceTraceConfig;
use ft_fedsim::trainer::LocalTrainConfig;

fn short_cfg(clients_per_round: usize) -> FedTransConfig {
    FedTransConfig::default()
        .with_clients_per_round(clients_per_round)
        .with_gamma(2)
        .with_delta(2)
        .with_local(LocalTrainConfig {
            local_steps: 5,
            ..Default::default()
        })
}

fn devices_for(n: usize, base: u64) -> ft_fedsim::device::DeviceTrace {
    DeviceTraceConfig::default()
        .with_num_devices(n)
        .with_base_capacity(base)
        .with_disparity(30.0)
        .generate()
}

#[test]
fn dense_family_end_to_end() {
    let data = DatasetConfig::femnist_like()
        .with_num_clients(15)
        .with_mean_samples(30)
        .generate();
    let devices = devices_for(15, 1_000);
    let mut rt = FedTransRuntime::new(short_cfg(6), data, devices).unwrap();
    let report = drive(&mut rt, 25, &RoundOptions::default()).unwrap();
    assert_eq!(report.rounds.len(), 25);
    // Better than chance (1/16).
    assert!(
        report.final_accuracy.mean > 0.15,
        "{}",
        report.final_accuracy.mean
    );
    assert!(report.pmacs > 0.0);
}

#[test]
fn conv_family_end_to_end() {
    let data = DatasetConfig::cifar_like()
        .with_num_clients(10)
        .with_mean_samples(25)
        .generate();
    let devices = devices_for(10, 50_000);
    let mut rt = FedTransRuntime::new(short_cfg(5), data, devices).unwrap();
    let report = drive(&mut rt, 15, &RoundOptions::default()).unwrap();
    // Better than chance (1/10).
    assert!(
        report.final_accuracy.mean > 0.15,
        "{}",
        report.final_accuracy.mean
    );
}

#[test]
fn attention_family_end_to_end() {
    let data = DatasetConfig::femnist_vit_like()
        .with_num_clients(10)
        .with_mean_samples(25)
        .generate();
    let devices = devices_for(10, 60_000);
    let mut rt = FedTransRuntime::new(short_cfg(5), data, devices).unwrap();
    let report = drive(&mut rt, 15, &RoundOptions::default()).unwrap();
    assert!(
        report.final_accuracy.mean > 0.1,
        "{}",
        report.final_accuracy.mean
    );
}

#[test]
fn full_run_is_deterministic() {
    let make = || {
        let data = DatasetConfig::femnist_like()
            .with_num_clients(12)
            .with_mean_samples(25)
            .generate();
        let devices = devices_for(12, 1_000);
        FedTransRuntime::new(short_cfg(6), data, devices).unwrap()
    };
    let a = drive(&mut make(), 12, &RoundOptions::default()).unwrap();
    let b = drive(&mut make(), 12, &RoundOptions::default()).unwrap();
    assert_eq!(a.per_client_accuracy, b.per_client_accuracy);
    assert_eq!(a.model_archs, b.model_archs);
    assert_eq!(a.pmacs, b.pmacs);
    assert_eq!(a.network_mb, b.network_mb);
}

#[test]
fn transformation_grows_suite_and_costs_track() {
    let data = DatasetConfig::femnist_like()
        .with_num_clients(12)
        .with_mean_samples(25)
        .generate();
    let devices = devices_for(12, 1_000);
    let mut cfg = short_cfg(6);
    cfg.beta = 5.0; // transform as soon as history allows
    cfg.transform_cooldown = 4;
    let mut rt = FedTransRuntime::new(cfg, data, devices).unwrap();
    let report = drive(&mut rt, 25, &RoundOptions::default()).unwrap();
    assert!(report.model_archs.len() >= 2, "no transformation fired");
    // Model MACs non-decreasing along the growth chain.
    assert!(report.model_macs.windows(2).all(|w| w[1] >= w[0]));
    // Cumulative cost strictly increases per round.
    assert!(report
        .rounds
        .windows(2)
        .all(|w| w[1].cumulative_pmacs > w[0].cumulative_pmacs));
    // The largest model must fit the most capable device.
    let max_cap = rt
        .models()
        .iter()
        .map(|m| m.macs_per_sample())
        .max()
        .unwrap();
    assert!(max_cap <= 30 * 1_000 * 2);
}

#[test]
fn loss_decreases_over_training() {
    let data = DatasetConfig::femnist_like()
        .with_num_clients(12)
        .with_mean_samples(30)
        .generate();
    let devices = devices_for(12, 1_000);
    let mut rt = FedTransRuntime::new(short_cfg(8), data, devices).unwrap();
    let report = drive(&mut rt, 30, &RoundOptions::default()).unwrap();
    let early: f32 = report.rounds[..5].iter().map(|r| r.mean_loss).sum::<f32>() / 5.0;
    let late: f32 = report.rounds[25..].iter().map(|r| r.mean_loss).sum::<f32>() / 5.0;
    assert!(late < early, "loss did not decrease: {early} -> {late}");
}
