//! Directional checks of the paper's headline claims at test scale.
//!
//! These are deliberately coarse (small clients/rounds) so the suite
//! stays fast; the bench binaries reproduce the full artifacts.

use fedtrans::{DocTracker, FedTransConfig, FedTransRuntime};
use ft_data::DatasetConfig;
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::DeviceTraceConfig;
use ft_fedsim::metrics::{mean, std_dev};
use ft_fedsim::trainer::LocalTrainConfig;

fn cfg() -> FedTransConfig {
    FedTransConfig::default()
        .with_clients_per_round(8)
        .with_gamma(2)
        .with_delta(2)
        .with_local(LocalTrainConfig {
            local_steps: 5,
            ..Default::default()
        })
}

#[test]
fn warmup_preserves_training_progress() {
    // Claim (§4.1): function-preserving warm-up means a spawned model
    // starts from its parent's loss, not from scratch.
    let data = DatasetConfig::femnist_like()
        .with_num_clients(12)
        .with_mean_samples(30)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(12)
        .with_base_capacity(1_000)
        .generate();
    let mut c = cfg();
    c.beta = 10.0;
    c.transform_cooldown = 6;
    let mut rt = FedTransRuntime::new(c, data, devices).unwrap();
    let report = drive(&mut rt, 20, &RoundOptions::default()).unwrap();
    assert!(report.model_archs.len() >= 2, "needs a transformation");
    // Find the transform round; the next round's loss must not blow up
    // past the initial (cold-start) loss.
    let t = report.rounds.iter().position(|r| r.transformed).unwrap();
    let initial_loss = report.rounds[0].mean_loss;
    if t + 2 < report.rounds.len() {
        let after = report.rounds[t + 1]
            .mean_loss
            .min(report.rounds[t + 2].mean_loss);
        assert!(
            after < initial_loss,
            "warm-started suite regressed to cold-start loss: {after} vs {initial_loss}"
        );
    }
}

#[test]
fn fedtrans_round_times_beat_one_size_fits_all() {
    // Claim (Appendix C / Table 6): capacity-matched models shrink both
    // the mean and the spread of client round times.
    let data = DatasetConfig::femnist_like()
        .with_num_clients(14)
        .with_mean_samples(25)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(14)
        .with_base_capacity(1_000)
        .generate();
    let mut c = cfg();
    c.beta = 10.0;
    c.transform_cooldown = 4;
    let mut rt = FedTransRuntime::new(c, data.clone(), devices.clone()).unwrap();
    let ft = drive(&mut rt, 20, &RoundOptions::default()).unwrap();
    let largest = rt.models().last().unwrap().clone();

    let bl = ft_baselines::BaselineConfig {
        clients_per_round: 8,
        local: LocalTrainConfig {
            local_steps: 5,
            ..Default::default()
        },
        seed: 1,
        eval_every: 0,
        enforce_capacity: true,
        ..Default::default()
    };
    let mut fedavg_rt =
        ft_baselines::FedAvg::new(bl, data, devices, largest, ft_baselines::ServerOpt::Average);
    let fedavg = drive(&mut fedavg_rt, 20, &RoundOptions::default()).unwrap();
    assert!(
        mean(&ft.client_times_s) < mean(&fedavg.client_times_s),
        "FedTrans should have lower mean round time"
    );
    assert!(
        std_dev(&ft.client_times_s) < std_dev(&fedavg.client_times_s),
        "FedTrans should have lower round-time spread"
    );
}

#[test]
fn doc_tracks_the_elbow() {
    // Claim (Eq. 1): DoC is high on a steep loss curve and falls below
    // beta at the plateau.
    let mut doc = DocTracker::new(3, 2);
    for i in 0..10 {
        doc.record(5.0 - 0.4 * i as f32);
    }
    assert!(doc.doc().unwrap() > 0.3);
    for _ in 0..10 {
        doc.record(1.0);
    }
    assert!(doc.converged(0.003));
}

#[test]
fn multi_model_suite_covers_capacity_spectrum() {
    // Claim (§3): the suite spans complexities from the weakest to the
    // strongest device tier.
    let data = DatasetConfig::femnist_like()
        .with_num_clients(16)
        .with_mean_samples(25)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(16)
        .with_base_capacity(1_000)
        .with_disparity(30.0)
        .generate();
    let mut c = cfg();
    c.beta = 10.0;
    c.transform_cooldown = 4;
    let mut rt = FedTransRuntime::new(c, data, devices.clone()).unwrap();
    let report = drive(&mut rt, 30, &RoundOptions::default()).unwrap();
    let min_macs = *report.model_macs.first().unwrap();
    let max_macs = *report.model_macs.last().unwrap();
    assert!(
        min_macs <= devices.min_capacity(),
        "seed fits the weakest device"
    );
    assert!(
        max_macs > min_macs,
        "suite should span multiple complexities"
    );
    assert!(
        max_macs <= devices.max_capacity(),
        "no model exceeds the strongest device"
    );
}

#[test]
fn ablations_change_behaviour() {
    // Table 3's arms must actually produce different runs.
    let data = DatasetConfig::femnist_like()
        .with_num_clients(12)
        .with_mean_samples(25)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(12)
        .with_base_capacity(1_000)
        .generate();
    let mut base = cfg();
    base.beta = 10.0;
    base.transform_cooldown = 4;
    let mut full_rt = FedTransRuntime::new(base.clone(), data.clone(), devices.clone()).unwrap();
    let full = drive(&mut full_rt, 16, &RoundOptions::default()).unwrap();
    let mut no_warm_rt = FedTransRuntime::new(base.ablate_warmup(), data, devices).unwrap();
    let no_warm = drive(&mut no_warm_rt, 16, &RoundOptions::default()).unwrap();
    assert_ne!(full.per_client_accuracy, no_warm.per_client_accuracy);
}
