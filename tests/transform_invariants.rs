//! Property-based tests of the paper's core invariant: model
//! transformation is function-preserving, and the surrounding
//! machinery (similarity, cropping, submodels) respects its bounds.

use ft_baselines::submodel::{extract, KeepPlan};
use ft_model::similarity::model_similarity;
use ft_model::{deepen_cell, widen_cell, CellModel};
use ft_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds a dense model from a proptest-chosen architecture.
fn dense_model(seed: u64, dim: usize, hidden: &[usize], classes: usize) -> CellModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    CellModel::dense(&mut rng, dim, hidden, classes)
}

fn max_output_diff(a: &mut CellModel, b: &mut CellModel, dim: usize, seed: u64) -> f32 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let x = ft_tensor::uniform(&mut rng, &[5, dim], -1.0, 1.0);
    let ya = a.forward(&x).unwrap();
    let yb = b.forward(&x).unwrap();
    ya.data()
        .iter()
        .zip(yb.data())
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_transform_sequences_preserve_function(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0usize..2, 0usize..4), 1..4),
        h1 in 4usize..10,
        h2 in 4usize..10,
    ) {
        let dim = 6;
        let mut model = dense_model(seed, dim, &[h1, h2], 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        for (kind, raw_idx) in ops {
            let idx = raw_idx % model.cells().len();
            let mut parent = model.clone();
            let mut child = if kind == 0 {
                widen_cell(&model, idx, 2.0, &mut rng).unwrap()
            } else {
                deepen_cell(&model, idx, 1, &mut rng).unwrap()
            };
            let diff = max_output_diff(&mut parent, &mut child, dim, seed + 2);
            prop_assert!(diff < 1e-3, "transform broke the function: {diff}");
            model = child;
        }
    }

    #[test]
    fn widen_factor_controls_growth(
        seed in 0u64..1000,
        factor_pct in 110u32..400,
    ) {
        let factor = factor_pct as f32 / 100.0;
        let parent = dense_model(seed, 6, &[8], 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let child = widen_cell(&parent, 0, factor, &mut rng).unwrap();
        let expected = ((8.0 * factor).round() as usize).max(9);
        prop_assert_eq!(child.cells()[0].out_width(), expected);
        prop_assert!(child.param_count() > parent.param_count());
    }

    #[test]
    fn similarity_is_bounded_and_symmetric(
        seed in 0u64..1000,
        widen_first in proptest::bool::ANY,
    ) {
        let parent = dense_model(seed, 6, &[8, 8], 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let child = if widen_first {
            widen_cell(&parent, 0, 2.0, &mut rng).unwrap()
        } else {
            deepen_cell(&parent, 0, 1, &mut rng).unwrap()
        };
        let s1 = model_similarity(&parent, &child);
        let s2 = model_similarity(&child, &parent);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-6);
        prop_assert!(s1 > 0.0, "related models must have positive similarity");
        prop_assert!(s1 < 1.0, "transformed model cannot be identical");
    }

    #[test]
    fn submodel_extraction_shrinks_monotonically(
        seed in 0u64..1000,
        ratio_pct in 10u32..100,
    ) {
        let ratio = ratio_pct as f32 / 100.0;
        let global = dense_model(seed, 8, &[16, 16], 4);
        let sub = extract(&global, &KeepPlan::corner(&global, ratio));
        prop_assert!(sub.param_count() <= global.param_count());
        prop_assert!(sub.macs_per_sample() <= global.macs_per_sample());
        // Still runs.
        let mut s = sub;
        let y = s.forward(&Tensor::ones(&[2, 8])).unwrap();
        prop_assert_eq!(y.shape().dims(), &[2usize, 4]);
    }

    #[test]
    fn crop_composes_with_growth(
        seed in 0u64..1000,
    ) {
        // A widened child's corner crop equals the parent shape and,
        // before any training, the parent weights exactly.
        let parent = dense_model(seed, 6, &[8], 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let child = widen_cell(&parent, 0, 2.0, &mut rng).unwrap();
        let pw = parent.cells()[0].param_tensors()[0];
        let cw = child.cells()[0].param_tensors()[0];
        let cropped = ft_model::crop::crop_to(cw, pw.shape().dims());
        prop_assert_eq!(cropped, pw.clone());
    }
}
