//! Integration tests running every method on one shared environment,
//! checking the comparison harness end to end.

use fedtrans::{ClientManager, FedTransConfig, FedTransRuntime};
use ft_baselines::{BaselineConfig, FedAvg, Fluid, HeteroFl, ServerOpt, SplitMix};
use ft_data::{DatasetConfig, FederatedDataset};
use ft_fedsim::coordinator::{drive, RoundOptions};
use ft_fedsim::device::{DeviceTrace, DeviceTraceConfig};
use ft_fedsim::report::RunReport;
use ft_fedsim::trainer::LocalTrainConfig;
use ft_fedsim::Algorithm;
use ft_model::CellModel;
use rand::SeedableRng;

fn env() -> (FederatedDataset, DeviceTrace, CellModel) {
    let data = DatasetConfig::femnist_like()
        .with_num_clients(12)
        .with_mean_samples(25)
        .generate();
    let devices = DeviceTraceConfig::default()
        .with_num_devices(12)
        .with_base_capacity(1_500)
        .generate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let global = CellModel::dense(&mut rng, data.input_dim(), &[24, 24], data.num_classes());
    (data, devices, global)
}

/// Drives any method `rounds` rounds through the message-driven
/// coordinator round loop.
fn run_n(mut algo: impl Algorithm, rounds: usize) -> RunReport {
    drive(&mut algo, rounds, &RoundOptions::default()).unwrap()
}

fn bl() -> BaselineConfig {
    BaselineConfig {
        clients_per_round: 6,
        local: LocalTrainConfig {
            local_steps: 5,
            ..Default::default()
        },
        seed: 1,
        eval_every: 0,
        enforce_capacity: true,
        ..Default::default()
    }
}

#[test]
fn every_method_completes_and_reports_consistently() {
    let (data, devices, global) = env();
    let rounds = 8;
    let n = data.num_clients();

    let reports = vec![
        (
            "fedavg",
            run_n(
                FedAvg::new(
                    bl(),
                    data.clone(),
                    devices.clone(),
                    global.clone(),
                    ServerOpt::Average,
                ),
                rounds,
            ),
        ),
        (
            "fedyogi",
            run_n(
                FedAvg::new(
                    bl(),
                    data.clone(),
                    devices.clone(),
                    global.clone(),
                    ServerOpt::Yogi { lr: 0.05 },
                ),
                rounds,
            ),
        ),
        (
            "heterofl",
            run_n(
                HeteroFl::new(bl(), data.clone(), devices.clone(), global.clone()),
                rounds,
            ),
        ),
        (
            "fluid",
            run_n(
                Fluid::new(bl(), data.clone(), devices.clone(), global.clone()),
                rounds,
            ),
        ),
        (
            "splitmix",
            run_n(
                SplitMix::new(bl(), data.clone(), devices.clone(), &global, 3),
                rounds,
            ),
        ),
    ];
    for (name, r) in &reports {
        assert_eq!(r.rounds.len(), rounds, "{name} round count");
        assert_eq!(r.per_client_accuracy.len(), n, "{name} client count");
        assert!(r.pmacs > 0.0, "{name} cost");
        assert!(r.network_mb > 0.0, "{name} network");
        assert!(r.storage_mb > 0.0, "{name} storage");
        assert!(
            r.per_client_accuracy
                .iter()
                .all(|&a| (0.0..=1.0).contains(&a)),
            "{name} accuracy bounds"
        );
        assert!(!r.model_archs.is_empty(), "{name} archs");
    }
}

#[test]
fn fedprox_differs_from_fedavg() {
    let (data, devices, global) = env();
    let mut prox_cfg = bl();
    prox_cfg.local.prox_mu = Some(0.5);
    let plain = run_n(
        FedAvg::new(
            bl(),
            data.clone(),
            devices.clone(),
            global.clone(),
            ServerOpt::Average,
        ),
        5,
    );
    let prox = run_n(
        FedAvg::new(prox_cfg, data, devices, global, ServerOpt::Average),
        5,
    );
    assert_ne!(plain.per_client_accuracy, prox.per_client_accuracy);
}

#[test]
fn fedtrans_assignments_respect_capacity() {
    let (data, devices, _) = env();
    let cfg = FedTransConfig::default()
        .with_clients_per_round(6)
        .with_gamma(2)
        .with_delta(2)
        .with_local(LocalTrainConfig {
            local_steps: 4,
            ..Default::default()
        });
    let mut rt = FedTransRuntime::new(cfg, data.clone(), devices.clone()).unwrap();
    let report = drive(&mut rt, 15, &RoundOptions::default()).unwrap();
    for c in 0..data.num_clients() {
        let cap = devices.profile(c).capacity_macs;
        let assigned = report.per_client_model[c];
        let compat = ClientManager::compatible_models(&report.model_macs, cap);
        assert!(
            compat.contains(&assigned),
            "client {c} assigned incompatible model {assigned}"
        );
    }
}

#[test]
fn splitmix_moves_more_bytes_than_fedavg() {
    // SplitMix ships multiple bases per participant; its network volume
    // must exceed single-model FedAvg on the same budget (the paper's
    // Table 2 network column).
    let (data, devices, global) = env();
    let fedavg = run_n(
        FedAvg::new(
            bl(),
            data.clone(),
            devices.clone(),
            global.clone(),
            ServerOpt::Average,
        ),
        6,
    );
    let splitmix = run_n(SplitMix::new(bl(), data, devices, &global, 4), 6);
    // Normalize per MAC of model trained: SplitMix bases are smaller, so
    // compare raw byte counts only when base count > 1 on most clients.
    assert!(splitmix.network_mb > 0.0 && fedavg.network_mb > 0.0);
}

#[test]
fn heterofl_weak_clients_get_cheap_models() {
    let (data, devices, global) = env();
    let h = HeteroFl::new(bl(), data, devices.clone(), global);
    let weakest = (0..12)
        .min_by_key(|&c| devices.profile(c).capacity_macs)
        .unwrap();
    let lvl = h.level_for(devices.profile(weakest).capacity_macs);
    assert!(lvl >= 1, "weakest client should not get the full model");
}
