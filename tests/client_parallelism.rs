//! Cross-thread-count determinism of the parallel client engine.
//!
//! The engine's contract (`ft_fedsim::exec`) is that `FT_CLIENT_THREADS`
//! changes wall-clock only, never a single report byte. These tests run
//! real canned scenarios — one skew-heavy, one fault-heavy — at thread
//! widths 1 and 4 and require identical digests, with and without a
//! kill/resume in the middle of the round sequence, and additionally
//! pin the digests to the committed goldens so a rescheduling bug
//! cannot hide behind "identical but both wrong".
//!
//! This file is its own process, so it pins the tensor pool to 4
//! threads (`FT_TENSOR_THREADS`) before first pool use — on a
//! single-core CI runner the engine would otherwise fall back to the
//! serial path and the comparison would be vacuous.

use std::path::PathBuf;
use std::sync::{Mutex, Once, OnceLock};

use ft_harness::{registry, run_scenario, RunOptions};

/// Serializes tests that flip `FT_CLIENT_THREADS` (process-global).
fn env_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Forces a 3-worker pool before anything touches it.
fn pinned_pool() {
    static PIN: Once = Once::new();
    PIN.call_once(|| {
        std::env::set_var("FT_TENSOR_THREADS", "4");
        assert_eq!(ft_tensor::pool::max_parallelism(), 4);
    });
}

fn digest_with_threads(scenario: &str, threads: &str, opts: &RunOptions) -> Option<String> {
    pinned_pool();
    std::env::set_var("FT_CLIENT_THREADS", threads);
    let scenario = registry::find(scenario).expect("canned scenario");
    let outcome = run_scenario(&scenario, opts).expect("scenario runs");
    std::env::remove_var("FT_CLIENT_THREADS");
    outcome.digest
}

fn quick() -> RunOptions {
    RunOptions {
        quick: true,
        ..Default::default()
    }
}

#[test]
fn digests_identical_across_client_thread_counts() {
    let _guard = env_lock().lock().unwrap();
    let goldens = registry::load_goldens().expect("goldens.json is committed");
    for scenario in ["dirichlet-skew", "high-dropout"] {
        let serial = digest_with_threads(scenario, "1", &quick()).expect("finished");
        let parallel = digest_with_threads(scenario, "4", &quick()).expect("finished");
        assert_eq!(
            serial, parallel,
            "{scenario}: report must be byte-identical across FT_CLIENT_THREADS"
        );
        assert_eq!(
            Some(&serial),
            goldens.get(scenario),
            "{scenario}: digest must match the committed golden"
        );
    }
}

#[test]
fn kill_resume_mid_sequence_is_thread_count_independent() {
    let _guard = env_lock().lock().unwrap();
    let goldens = registry::load_goldens().expect("goldens.json is committed");
    for scenario in ["dirichlet-skew", "high-dropout"] {
        let path: PathBuf = std::env::temp_dir().join(format!(
            "ft-client-par-{scenario}-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Run the first rounds wide, kill, then resume serial: the
        // stitched-together report must still match the golden, which
        // proves the per-client RNG derivation is captured by the
        // checkpoint (it is stateless in (seed, round, client)) rather
        // than by any thread-local state.
        let interrupted = digest_with_threads(
            scenario,
            "4",
            &RunOptions {
                quick: true,
                checkpoint_path: Some(path.clone()),
                stop_after: Some(2),
                ..Default::default()
            },
        );
        assert!(interrupted.is_none(), "{scenario}: run must stop early");
        assert!(path.exists(), "{scenario}: checkpoint must exist");
        let resumed = digest_with_threads(
            scenario,
            "1",
            &RunOptions {
                quick: true,
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("resumed run finishes");
        assert_eq!(
            Some(&resumed),
            goldens.get(scenario),
            "{scenario}: resumed cross-thread-count digest must match the golden"
        );
        let _ = std::fs::remove_file(&path);
    }
}
