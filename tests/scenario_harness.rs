//! Cross-crate integration tests for the scenario harness: canned
//! registry execution, checkpoint/resume byte-identity for FedTrans
//! and a baseline, and golden-digest agreement.

use std::path::PathBuf;

use ft_harness::{registry, run_scenario, RunOptions};

fn tmp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ft-scenario-harness-{tag}-{}.json",
        std::process::id()
    ))
}

/// Runs a canned scenario uninterrupted, then again with a mid-run
/// checkpoint/restart, asserting byte-identical reports.
fn assert_resume_byte_identical(name: &str, stop_after: usize) {
    let scenario = registry::find(name).expect("canned scenario");
    let reference = run_scenario(
        &scenario,
        &RunOptions {
            quick: true,
            ..Default::default()
        },
    )
    .expect("reference run");
    let reference_json = serde_json::to_string(reference.report.as_ref().unwrap()).unwrap();

    let path = tmp_checkpoint(name);
    let _ = std::fs::remove_file(&path);
    let interrupted = run_scenario(
        &scenario,
        &RunOptions {
            quick: true,
            checkpoint_path: Some(path.clone()),
            stop_after: Some(stop_after),
            ..Default::default()
        },
    )
    .expect("interrupted run");
    assert!(!interrupted.finished());

    let resumed = run_scenario(
        &scenario,
        &RunOptions {
            quick: true,
            checkpoint_path: Some(path),
            ..Default::default()
        },
    )
    .expect("resumed run");
    assert_eq!(resumed.resumed_from, Some(stop_after as u32));
    assert_eq!(
        serde_json::to_string(resumed.report.as_ref().unwrap()).unwrap(),
        reference_json,
        "{name}: resumed report must be byte-identical to the uninterrupted run"
    );
    assert_eq!(resumed.digest, reference.digest);
}

#[test]
fn fedtrans_scenario_resumes_byte_identically() {
    // dirichlet-skew is the FedTrans arm with non-trivial skew.
    assert_resume_byte_identical("dirichlet-skew", 3);
}

#[test]
fn baseline_scenario_resumes_byte_identically() {
    // hetero-tiers drives HeteroFL through the same checkpoint path.
    assert_resume_byte_identical("hetero-tiers", 3);
}

#[test]
fn fault_injected_scenario_resumes_byte_identically() {
    // Dropout/straggler hashing must not depend on process history.
    assert_resume_byte_identical("straggler-heavy", 5);
}

#[test]
fn byzantine_scenario_resumes_byte_identically() {
    // Attack injection and the buffering trimmed-mean sink are both
    // stateless across rounds (corruption hashes from (seed, round,
    // client); the sink drains inside each round), so a kill/resume
    // under active attack must replay the defended fold bit for bit.
    assert_resume_byte_identical("byzantine-trimmed-mean", 4);
}

#[test]
fn every_canned_scenario_matches_its_committed_golden() {
    let goldens = registry::load_goldens().expect("goldens.json committed");
    for scenario in registry::canned() {
        let outcome = run_scenario(
            &scenario,
            &RunOptions {
                quick: true,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert!(outcome.finished(), "{} must finish", scenario.name);
        let digest = outcome.digest.expect("finished");
        let report = outcome.report.expect("finished");
        assert_eq!(
            report.rounds.len(),
            scenario.quick_rounds,
            "{} round count",
            scenario.name
        );
        // eval_clients caps the evaluation sweep (million-device
        // scenarios would otherwise evaluate the whole population).
        let evaluated = scenario
            .eval_clients
            .map_or(scenario.dataset.num_clients, |k| {
                k.min(scenario.dataset.num_clients)
            });
        assert_eq!(
            report.per_client_accuracy.len(),
            evaluated,
            "{} per-client accuracy length",
            scenario.name
        );
        assert_eq!(
            goldens.get(&scenario.name),
            Some(&digest),
            "{}: quick-mode digest drifted from goldens.json — \
             regenerate with `ft-run --update-goldens` if intentional",
            scenario.name
        );
    }
}

#[test]
fn scenario_json_config_round_trips_through_the_runner() {
    // A scenario serialized to JSON (the --config path) runs to the
    // same digest as its in-memory twin.
    let scenario = registry::find("iid-small").unwrap();
    let json = serde_json::to_string_pretty(&scenario).unwrap();
    let parsed: ft_harness::Scenario = serde_json::from_str(&json).unwrap();
    let a = run_scenario(
        &scenario,
        &RunOptions {
            quick: true,
            ..Default::default()
        },
    )
    .unwrap();
    let b = run_scenario(
        &parsed,
        &RunOptions {
            quick: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(a.digest, b.digest);
}
